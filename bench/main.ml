(* Benchmark harness for the reproduction.

   Two kinds of measurements:

   - E1-E9 and the ablations: deterministic simulated-time experiments
     (the tables DESIGN.md maps to the paper's claims). These live in
     the [workloads] library; this executable prints all of them.

   - E10: wall-clock microbenchmarks (Bechamel) comparing typed
     promises against MultiLisp-style dynamically checked futures —
     the §3.3 claim that futures "are inefficient to implement unless
     specialized hardware is available, since every object must be
     examined each time it is accessed". *)

open Bechamel
open Toolkit
module P = Core.Promise
module F = Futures_baseline

let n_items = 1000

(* --- E10 subjects --------------------------------------------------- *)

let bench_int_sum () =
  let arr = Array.init n_items Fun.id in
  Staged.stage (fun () ->
      let total = ref 0 in
      for i = 0 to n_items - 1 do
        total := !total + arr.(i)
      done;
      !total)

let bench_promise_claim_sum () =
  let sched = Sched.Scheduler.create () in
  let arr : (int, Core.Sigs.nothing) P.t array =
    Array.init n_items (fun i -> P.resolved sched (P.Normal i))
  in
  Staged.stage (fun () ->
      (* Typed: one claim per promise, then plain typed arithmetic —
         no per-operation tag checks. *)
      let total = ref 0 in
      for i = 0 to n_items - 1 do
        match P.claim arr.(i) with
        | P.Normal v -> total := !total + v
        | P.Signal _ | P.Unavailable _ | P.Failure _ -> ()
      done;
      !total)

let bench_future_touch_sum () =
  let sched = Sched.Scheduler.create () in
  let lst =
    List.init n_items (fun i ->
        let fut, resolve = F.make_unresolved sched in
        resolve (F.Int i);
        fut)
  in
  let dyn_list = List.fold_right (fun f acc -> F.Cons (f, acc)) lst F.Nil in
  Staged.stage (fun () ->
      (* Dynamic: every + must touch both operands and check tags. *)
      F.sum_list dyn_list)

let bench_promise_lifecycle () =
  let sched = Sched.Scheduler.create () in
  Staged.stage (fun () ->
      let p : (int, Core.Sigs.nothing) P.t = P.create sched in
      P.resolve p (P.Normal 42);
      match P.claim p with
      | P.Normal v -> v
      | P.Signal _ | P.Unavailable _ | P.Failure _ -> 0)

let bench_future_lifecycle () =
  let sched = Sched.Scheduler.create () in
  Staged.stage (fun () ->
      let fut, resolve = F.make_unresolved sched in
      resolve (F.Int 42);
      match F.touch fut with F.Int v -> v | _ -> 0)

(* The full suspension path: a fiber parks in claim, another resolves,
   the scheduler resumes the first — one effect capture + continue. *)
let bench_suspended_claim () =
  Staged.stage (fun () ->
      let sched = Sched.Scheduler.create () in
      let p : (int, Core.Sigs.nothing) P.t = P.create sched in
      let got = ref 0 in
      ignore
        (Sched.Scheduler.spawn sched (fun () ->
             match P.claim p with
             | P.Normal v -> got := v
             | P.Signal _ | P.Unavailable _ | P.Failure _ -> ()));
      ignore (Sched.Scheduler.spawn sched (fun () -> P.resolve p (P.Normal 7)));
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome);
      !got)

let bench_spawn_run () =
  Staged.stage (fun () ->
      let sched = Sched.Scheduler.create () in
      for _ = 1 to 10 do
        ignore (Sched.Scheduler.spawn sched (fun () -> Sched.Scheduler.yield sched))
      done;
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome))

let e10_tests =
  Test.make_grouped ~name:"E10"
    [
      Test.make ~name:(Printf.sprintf "plain int sum (%d)" n_items) (bench_int_sum ());
      Test.make
        ~name:(Printf.sprintf "promises: claim+sum (%d)" n_items)
        (bench_promise_claim_sum ());
      Test.make
        ~name:(Printf.sprintf "futures: touch+sum (%d)" n_items)
        (bench_future_touch_sum ());
      Test.make ~name:"promise create/resolve/claim" (bench_promise_lifecycle ());
      Test.make ~name:"future create/resolve/touch" (bench_future_lifecycle ());
      Test.make ~name:"sched create + blocked claim roundtrip" (bench_suspended_claim ());
      Test.make ~name:"spawn+yield+run 10 fibers" (bench_spawn_run ());
    ]

let run_e10 () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances e10_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  let table_rows = List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) rows in
  Workloads.Table.make ~id:"E10"
    ~title:"wall-clock: typed promises vs dynamically checked futures"
    ~header:[ "subject"; "time/run" ]
    ~notes:
      [
        "paper claim (§3.3): futures pay a dynamic check on every access; promises are \
         statically typed so claiming and using values costs no tag checks";
        "wall-clock numbers vary by machine; the shape (futures sum >> promises sum) is the \
         reproduced result";
      ]
    table_rows

(* --- main ---------------------------------------------------------- *)

let () =
  print_endline "Promises (Liskov & Shrira, PLDI 1988) -- reproduction benchmarks";
  print_endline "simulated-time experiments (deterministic):";
  print_newline ();
  List.iter Workloads.Table.print (Workloads.Experiments.run_all ());
  print_endline "wall-clock microbenchmarks (E10, Bechamel):";
  print_newline ();
  Workloads.Table.print (run_e10 ())
