(* CLI to run the reproduction experiments individually or all at
   once. `dune exec bin/experiments.exe -- --id E3`;
   `dune exec bin/experiments.exe -- --trace` dumps causal timelines
   (docs/TRACING.md). *)

(* [--trace] exits non-zero if the dump flags a missing edge, so the CI
   step that archives it also gates on it. *)
let run_ids trace ids =
  if trace then begin
    let out = Workloads.Exp_trace.dump () in
    print_string out;
    let warned =
      let n = String.length "WARNING" and m = String.length out in
      let rec go i = i + n <= m && (String.sub out i n = "WARNING" || go (i + 1)) in
      go 0
    in
    if warned then 1 else 0
  end
  else begin
    let ids = if ids = [] then Workloads.Experiments.all_ids else ids in
    let ok = ref true in
    List.iter
      (fun id ->
        match Workloads.Experiments.run id with
        | table -> Workloads.Table.print table
        | exception Not_found ->
            Printf.eprintf "unknown experiment id %S (known: %s)\n" id
              (String.concat ", " Workloads.Experiments.all_ids);
            ok := false)
      ids;
    if !ok then 0 else 1
  end

open Cmdliner

let ids_arg =
  let doc =
    "Experiment id to run (repeatable; default: all). The wall-clock microbenchmarks (E10) \
     are in bench/main.exe."
  in
  Arg.(value & opt_all string [] & info [ "i"; "id" ] ~docv:"ID" ~doc)

let trace_arg =
  let doc =
    "Instead of experiment tables, dump causal trace timelines: a pipelined \
     dependent-call chain and a small chaos run with crash + resubmit, every call's \
     journey rendered per promise and as a per-stream gantt (docs/TRACING.md)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let cmd =
  let doc = "run the Promises (PLDI 1988) reproduction experiments" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run_ids $ trace_arg $ ids_arg)

let () = exit (Cmd.eval' cmd)
