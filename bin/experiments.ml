(* CLI to run the reproduction experiments individually or all at
   once. `dune exec bin/experiments.exe -- --id E3` *)

let run_ids ids =
  let ids = if ids = [] then Workloads.Experiments.all_ids else ids in
  let ok = ref true in
  List.iter
    (fun id ->
      match Workloads.Experiments.run id with
      | table -> Workloads.Table.print table
      | exception Not_found ->
          Printf.eprintf "unknown experiment id %S (known: %s)\n" id
            (String.concat ", " Workloads.Experiments.all_ids);
          ok := false)
    ids;
  if !ok then 0 else 1

open Cmdliner

let ids_arg =
  let doc =
    "Experiment id to run (repeatable; default: all). The wall-clock microbenchmarks (E10) \
     are in bench/main.exe."
  in
  Arg.(value & opt_all string [] & info [ "i"; "id" ] ~docv:"ID" ~doc)

let cmd =
  let doc = "run the Promises (PLDI 1988) reproduction experiments" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run_ids $ ids_arg)

let () = exit (Cmd.eval' cmd)
