(* CLI to run the reproduction experiments individually or all at
   once. `dune exec bin/experiments.exe -- --id E3`;
   `dune exec bin/experiments.exe -- --trace` dumps causal timelines
   (docs/TRACING.md). *)

(* [--trace] / [--trace-diff] exit non-zero if the dump flags a missing
   edge or an unexpected delta, so the CI steps that archive them also
   gate on them. *)
let warning_gated out =
  print_string out;
  let warned =
    let n = String.length "WARNING" and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = "WARNING" || go (i + 1)) in
    go 0
  in
  if warned then 1 else 0

let run_ids trace trace_diff ids =
  if trace then warning_gated (Workloads.Exp_trace.dump ())
  else if trace_diff then warning_gated (Workloads.Exp_trace.render_diff ())
  else begin
    let ids = if ids = [] then Workloads.Experiments.all_ids else ids in
    let ok = ref true in
    List.iter
      (fun id ->
        match Workloads.Experiments.run id with
        | table -> Workloads.Table.print table
        | exception Not_found ->
            Printf.eprintf "unknown experiment id %S (known: %s)\n" id
              (String.concat ", " Workloads.Experiments.all_ids);
            ok := false)
      ids;
    if !ok then 0 else 1
  end

open Cmdliner

let ids_arg =
  let doc =
    "Experiment id to run (repeatable; default: all). The wall-clock microbenchmarks (E10) \
     are in bench/main.exe."
  in
  Arg.(value & opt_all string [] & info [ "i"; "id" ] ~docv:"ID" ~doc)

let trace_arg =
  let doc =
    "Instead of experiment tables, dump causal trace timelines: a pipelined \
     dependent-call chain and a small chaos run with crash + resubmit, every call's \
     journey rendered per promise and as a per-stream gantt (docs/TRACING.md)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_diff_arg =
  let doc =
    "Diff the causal edges of two runs (Sim.Span.diff, docs/TRACING.md): two same-seed \
     pipelined chains (must be identical — the determinism regression) and pipelined vs \
     claim-each-link (must differ by the park/substitute edges only pipelining takes)."
  in
  Arg.(value & flag & info [ "trace-diff" ] ~doc)

let cmd =
  let doc = "run the Promises (PLDI 1988) reproduction experiments" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run_ids $ trace_arg $ trace_diff_arg $ ids_arg)

let () = exit (Cmd.eval' cmd)
