(* The window system of §2: a create_window port returns newly created
   ports for interacting with the new window (putc/puts/change_color),
   each window's ports in their own group — so streams to different
   windows are sequenced independently.

   Demonstrates ports as first-class transmissible values (port_ref)
   and dynamically created port groups.

   Run with: dune exec examples/window.exe *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module G = Argus.Guardian

(* window = struct [ puts: port(string), change_color: port(string) ] *)
let window_codec = Xdr.pair Core.Sigs.port_ref_codec Core.Sigs.port_ref_codec

let create_window_sig = Core.Sigs.hsig0 "create_window" ~arg:Xdr.string ~res:window_codec

let puts_sig = Core.Sigs.hsig0 "puts" ~arg:Xdr.string ~res:Xdr.unit

let change_color_sig = Core.Sigs.hsig0 "change_color" ~arg:Xdr.string ~res:Xdr.unit

let () =
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let app_node = Net.add_node net ~name:"app" in
  let ws_node = Net.add_node net ~name:"window-system" in
  let app_hub = Cstream.Chanhub.create_hub ~net:(net, app_node) () in
  let ws_hub = Cstream.Chanhub.create_hub ~net:(net, ws_node) () in

  let ws = G.create ws_hub ~name:"window-system" in
  let next_window = ref 0 in
  (* create_window dynamically registers a fresh port group per
     window; its ports are returned as transmissible references. *)
  G.register ws ~group:"control" create_window_sig (fun ctx title ->
      let id = !next_window in
      incr next_window;
      let group = Printf.sprintf "window-%d" id in
      let tag line = Printf.printf "  [%s] %s\n" title line in
      G.register ctx.G.guardian ~group puts_sig (fun ctx line ->
          S.sleep ctx.G.sched 0.2e-3;
          tag line;
          Ok ());
      G.register ctx.G.guardian ~group change_color_sig (fun ctx color ->
          S.sleep ctx.G.sched 0.2e-3;
          tag ("<color set to " ^ color ^ ">");
          Ok ());
      Ok
        ( G.port_ref ctx.G.guardian ~group ~port:"puts",
          G.port_ref ctx.G.guardian ~group ~port:"change_color" ))

  ;
  ignore
    (S.spawn sched (fun () ->
         let agent = Core.Agent.create app_hub ~name:"app" () in
         let create_window =
           R.bind agent ~dst:(Net.address ws_node) ~gid:"control" create_window_sig
         in
         let open_window title =
           match R.Call.(sync (make create_window title)) with
           | P.Normal (puts_ref, color_ref) ->
               (R.bind_ref agent puts_ref puts_sig, R.bind_ref agent color_ref change_color_sig)
           | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "create_window failed"
         in
         print_endline "opening two windows...";
         let log_puts, log_color = open_window "log" in
         let chat_puts, _ = open_window "chat" in
         (* Writes to the two windows go on different streams (different
            groups), so they interleave; writes to ONE window stay in
            order. *)
         R.Call.(detach (make log_puts "booting"));
         R.Call.(detach (make chat_puts "hello from chat"));
         R.Call.(detach (make log_color "green"));
         R.Call.(detach (make log_puts "ready"));
         R.Call.(detach (make chat_puts "anyone here?"));
         Core.Agent.flush_all agent;
         (* Wait for both windows to finish their work. *)
         (match R.synch log_puts with Ok () -> () | Error _ -> failwith "log window");
         match R.synch chat_puts with Ok () -> () | Error _ -> failwith "chat window"));
  match S.run sched with
  | S.Completed -> print_endline "done."
  | S.Deadlocked _ -> print_endline "deadlock!"
  | S.Time_limit -> ()
