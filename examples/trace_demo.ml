(* Causal tracing in five minutes (docs/TRACING.md).

   Every call gets a trace id when it is issued; with the scheduler's
   span store enabled, each lifecycle edge — issue, enqueue, transmit,
   deliver, dispatch, park, substitute, execute, reply, ack, claim —
   records a timestamped span under that id. Afterwards the store
   renders the causal story per promise, and a Gantt view across all
   calls on the stream.

   This demo runs a plain call and then a pipelined pair (the second
   call takes the first's not-yet-ready result as an argument, parks at
   the receiver, and resumes when the producer finishes).

   Run with: dune exec examples/trace_demo.exe
   For bigger scenarios (an E13 chain, chaos with resubmission):
   dune exec bin/experiments.exe -- --trace *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module G = Argus.Guardian
module Span = Sim.Span

let step_sig = Core.Sigs.hsig0 "step" ~arg:Xdr.int ~res:Xdr.int

let () =
  (* A two-node world; tracing is one switch on the scheduler. *)
  let sched = S.create () in
  let spans = S.spans sched in
  Span.enable spans true;
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = Cstream.Chanhub.create_hub ~net:(net, client_node) () in
  let server_hub = Cstream.Chanhub.create_hub ~net:(net, server_node) () in

  (* The group executes unordered so a pipelined dependent can dispatch
     — and park — while its producer is still running. *)
  let server = G.create server_hub ~name:"stepper" in
  G.register_group server ~group:"steps"
    ~config:Cstream.Group_config.(default |> with_ordered false)
    ();
  G.register server ~group:"steps" step_sig (fun ctx n ->
      S.sleep ctx.G.sched 2e-3 (* pretend to work *);
      Ok (n + 1));

  let traced = ref [] in
  ignore
    (S.spawn sched (fun () ->
         let agent = Core.Agent.create client_hub ~name:"demo" () in
         let step = R.bind agent ~dst:(Net.address server_node) ~gid:"steps" step_sig in

         (* A plain call: issue -> ... -> execute -> reply -> claim. *)
         let p = R.Call.(submit (make step 10)) in
         R.flush step;
         assert (P.claim p = P.Normal 11);

         (* A pipelined pair: the dependent call ships immediately with
            a promise reference and parks at the receiver. *)
         let q1 = R.Call.(submit (make step 20)) in
         let q2 = R.Call.(submit (piped step (R.pipe q1))) in
         R.flush step;
         assert (P.claim q2 = P.Normal 22);

         traced :=
           List.filter_map
             (fun (name, tid) -> Option.map (fun t -> (name, t)) tid)
             [
               ("plain call", P.trace p);
               ("producer", P.trace q1);
               ("parked dependent", P.trace q2);
             ]));

  (match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked _ | S.Time_limit -> prerr_endline "simulation did not finish");

  List.iter
    (fun (name, tid) ->
      Printf.printf "--- %s ---\n%s\n" name (Span.timeline spans ~trace:tid))
    !traced;
  print_string (Span.gantt spans)
