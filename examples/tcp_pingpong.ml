(* Two OS processes talking promises over real loopback TCP sockets
   (docs/TRANSPORT.md).

   The parent forks: the child hosts a "pong" guardian, the parent a
   "ping" guardian plus the client agent. Both listening sockets are
   bound before the fork so each side knows the other's address. The
   client issues pipelined 2-deep call chains (the second call's
   argument is a pipe of the first call's promise, so the dependent
   call travels before its input exists — §4 of the paper), and halfway
   through claiming it forcibly closes every socket between the two
   processes. Supervision redials, resubmits, and the server-side dedup
   keeps every call exactly-once: the child counts executions per
   argument and reports the number of violations, which must be zero.
   Finally the child calls the parent's guardian back ("pong done") —
   the reverse direction dials its own connection — and both exit.

   Run with: dune exec examples/tcp_pingpong.exe
   (prints SKIP and exits 0 where loopback sockets are forbidden) *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module GC = Cstream.Group_config
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise
module Sup = Core.Supervisor
module T = Transport_tcp

let work_sig = Core.Sigs.hsig0 "work" ~arg:Xdr.int ~res:Xdr.int

(* report(expected_distinct_args) returns the number of exactly-once
   violations the server observed: args executed != 1 time, plus any
   shortfall in distinct args. *)
let report_sig = Core.Sigs.hsig0 "report" ~arg:Xdr.int ~res:Xdr.int

(* done() — the child's parting call to the parent's guardian. *)
let done_sig = Core.Sigs.hsig0 "done" ~arg:Xdr.unit ~res:Xdr.unit

let n_chains = 40

(* Snappy break detection and retries: this example forces a socket
   close mid-stream and should recover in milliseconds. *)
let chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 8;
    flush_interval = 0.5e-3;
    retransmit_timeout = 5e-3;
    max_retries = 8;
  }

let sup_cfg =
  {
    Sup.default_config with
    Sup.backoff_base = 2e-3;
    backoff_max = 20e-3;
    backoff_jitter = 0.0;
    retry_budget = 16;
  }

let group_cfg = GC.(default |> with_reply_config chan_cfg |> with_dedup)

let parent_addr = 0
let pong_addr = 1

(* --- child: the pong server ----------------------------------------- *)

let run_child ~listen_fd ~parent_sockaddr =
  let sched = S.create () in
  let fab = T.create sched in
  let tr = T.endpoint fab ~addr:pong_addr ~name:"pong" () in
  T.listen_fd fab ~addr:pong_addr listen_fd;
  T.set_peer fab ~addr:parent_addr parent_sockaddr;
  let hub = CH.create_hub ~transport:tr () in
  let pong = G.create hub ~name:"pong" in
  let execs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let finished = ref None in
  G.register_group pong ~group:"main" ~config:group_cfg ();
  G.register pong ~group:"main" work_sig (fun ctx v ->
      Hashtbl.replace execs v (1 + Option.value ~default:0 (Hashtbl.find_opt execs v));
      if Sys.getenv_opt "PP_DEBUG" <> None then Printf.printf "pong: work %d\n%!" v;
      (* ~1 ms of wall-clock work per call keeps the server busy long
         enough that the parent's mid-claim socket cut lands while
         calls are genuinely in flight *)
      S.sleep ctx.G.sched 1e-3;
      Ok (v + 1));
  G.register pong ~group:"main" report_sig (fun _ctx expected ->
      if Sys.getenv_opt "PP_DEBUG" <> None then Printf.printf "pong: report %d\n%!" expected;
      let violations = ref (max 0 (expected - Hashtbl.length execs)) in
      Hashtbl.iter (fun _ count -> if count <> 1 then incr violations) execs;
      (* reply first; the waiting finisher fiber makes the done call *)
      (match !finished with Some w -> ignore (S.wake w !violations : bool) | None -> ());
      Ok !violations);
  (* The finisher keeps the child alive (a parked fiber counts as live,
     so the real-time loop keeps selecting) until the report arrives,
     then calls the parent back and exits the process. *)
  ignore
    (S.spawn sched ~name:"finisher" (fun () ->
         let violations = S.suspend sched (fun w -> finished := Some w) in
         let ag = Core.Agent.create hub ~name:"pong-done" ~config:chan_cfg () in
         let d = R.bind ag ~dst:parent_addr ~gid:"ctl" done_sig in
         (match R.Call.(sync (make d ())) with
         | P.Normal () -> ()
         | P.Signal _ | P.Unavailable _ | P.Failure _ ->
             print_endline "pong: done call failed");
         (* let the report reply's ack settle, then leave *)
         S.sleep sched 50e-3;
         T.close fab;
         exit (if violations = 0 then 0 else 1)));
  match S.run sched with
  | S.Completed | S.Time_limit -> exit 2 (* finisher should have exited *)
  | S.Deadlocked _ -> exit 3

(* --- parent: the ping client ---------------------------------------- *)

let run_parent ~listen_fd ~pong_sockaddr ~child_pid =
  let sched = S.create () in
  let fab = T.create sched in
  let tr = T.endpoint fab ~addr:parent_addr ~name:"ping" () in
  T.listen_fd fab ~addr:parent_addr listen_fd;
  T.set_peer fab ~addr:pong_addr pong_sockaddr;
  let hub = CH.create_hub ~transport:tr () in
  (* the parent's own guardian: the child calls done() on it *)
  let ping = G.create hub ~name:"ping" in
  (* level-triggered: the done() call may beat the main fiber to the
     rendezvous (it can even arrive before the report reply does) *)
  let done_flag = ref false in
  let done_seen = ref None in
  G.register_group ping ~group:"ctl" ~config:GC.(default |> with_reply_config chan_cfg) ();
  G.register ping ~group:"ctl" done_sig (fun _ctx () ->
      done_flag := true;
      (match !done_seen with Some w -> ignore (S.wake w () : bool) | None -> ());
      Ok ());
  let failures = ref 0 in
  ignore
    (S.spawn sched ~name:"ping-main" (fun () ->
         let ag = Core.Agent.create hub ~name:"ping" ~config:chan_cfg () in
         let sup = Sup.supervise_agent ~config:sup_cfg ag ~dst:pong_addr ~gid:"main" in
         let h = R.bind ag ~dst:pong_addr ~gid:"main" work_sig in
         (* 2-deep chains: work(2i) |> pipe |> work — the dependent call
            is on the wire before its argument exists. *)
         let chains =
           List.init n_chains (fun i ->
               let first = R.Call.(submit (make h (2 * i))) in
               R.Call.(submit (piped h (R.pipe first))))
         in
         R.flush h;
         if Sys.getenv_opt "PP_DEBUG" <> None then print_endline "ping: flushed";
         List.iteri
           (fun i p ->
             if i = n_chains / 2 then begin
               (* forced socket close, mid-stream, both directions *)
               T.drop_peer_connections fab ~addr:pong_addr;
               Printf.printf "ping: cut every socket after %d/%d chains claimed\n%!" i
                 n_chains
             end;
             match P.claim p with
             | P.Normal v when v = (2 * i) + 2 -> ()
             | P.Normal v ->
                 incr failures;
                 Printf.printf "ping: chain %d returned %d, wanted %d\n%!" i v ((2 * i) + 2)
             | P.Signal _ | P.Unavailable _ | P.Failure _ ->
                 incr failures;
                 Printf.printf "ping: chain %d failed\n%!" i)
           chains;
         Printf.printf "ping: all %d pipelined chains claimed across the break\n%!" n_chains;
         let rep = R.bind ag ~dst:pong_addr ~gid:"main" report_sig in
         if Sys.getenv_opt "PP_DEBUG" <> None then print_endline "ping: sending report";
         (match R.Call.(sync (make rep (2 * n_chains))) with
         | P.Normal 0 -> print_endline "pong reports: every call executed exactly once"
         | P.Normal v ->
             incr failures;
             Printf.printf "pong reports %d exactly-once violations\n%!" v
         | P.Signal _ | P.Unavailable _ | P.Failure _ ->
             incr failures;
             print_endline "ping: report call failed");
         Sup.stop sup;
         (* wait for the child's reverse-direction done() call *)
         if not !done_flag then S.suspend sched (fun w -> done_seen := Some w);
         print_endline "ping: pong called back over its own dialed connection";
         S.sleep sched 50e-3 (* let the done reply reach the child *);
         T.close fab));
  (match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked _ ->
      incr failures;
      print_endline "ping: deadlock"
  | S.Time_limit -> ());
  let _, status = Unix.waitpid [] child_pid in
  (match status with
  | Unix.WEXITED 0 -> print_endline "child exited cleanly"
  | Unix.WEXITED c ->
      incr failures;
      Printf.printf "child exited with %d\n%!" c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      incr failures;
      print_endline "child killed");
  if !failures = 0 then print_endline "tcp_pingpong: OK" else exit 1

let () =
  let listen_on_loopback () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen fd 16;
    (fd, Unix.getsockname fd)
  in
  match listen_on_loopback () with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.printf "SKIP tcp_pingpong: no loopback sockets here (%s)\n%!"
        (Unix.error_message e)
  | parent_fd, parent_sa -> (
      let pong_fd, pong_sa = listen_on_loopback () in
      match Unix.fork () with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.printf "SKIP tcp_pingpong: fork unavailable (%s)\n%!" (Unix.error_message e)
      | 0 ->
          Unix.close parent_fd;
          run_child ~listen_fd:pong_fd ~parent_sockaddr:parent_sa
      | child_pid ->
          Unix.close pong_fd;
          run_parent ~listen_fd:parent_fd ~pong_sockaddr:pong_sa ~child_pid)
