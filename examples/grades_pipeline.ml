(* The paper's running example (§3.1, §4): record student grades in a
   database guardian, then print each student's new average via a
   printer guardian — first as Figure 3-1 writes it (two sequential
   loops), then as Figure 4-2 writes it (a coenter composing the two
   streams through a queue of promises). Prints both timings.

   Run with: dune exec examples/grades_pipeline.exe *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module W = Workloads.Fixtures

(* Both guardians' port groups get the same unified configuration:
   deduplicated calls, so a retransmitted record_grade is applied once. *)
let group_config = Cstream.Group_config.(default |> with_dedup)

let n_students = 200

let produce_cost = 0.2e-3 (* reading the next record from local state *)

let service = 0.2e-3 (* db and printer per-call time *)

(* Figure 3-1: loop 1 streams record_grade calls and saves the promises
   in a list; loop 2 claims them in (alphabetical) order and streams
   the lines to the printer. *)
let figure_3_1 () =
  let w = W.make_grades_world ~db_service:service ~print_service:service ~group_config () in
  let busy = (w.W.g_db_busy, w.W.g_print_busy) in
  let students = W.students n_students in
  let time =
    W.timed_run w.W.g_sched (fun () ->
        let record_grade = W.db_handle w ~agent:"client-db" () in
        let print = W.print_handle w ~agent:"client-pr" () in
        let averages =
          List.map
            (fun s ->
              S.sleep w.W.g_sched produce_cost;
              R.Call.(submit (make record_grade s)))
            students
        in
        R.flush record_grade;
        List.iter2
          (fun (stu, _) avg_p ->
            let avg = P.claim_normal avg_p ~on_signal:(fun _ -> nan) in
            R.Call.(detach (make print (Printf.sprintf "%s: %.1f" stu avg))))
          students averages;
        match R.synch print with
        | Ok () -> ()
        | Error _ -> failwith "printing failed")
  in
  (time, List.length !(w.W.g_printed), busy)

(* Figure 4-2: the same work as a coenter. One arm records grades and
   enqueues the promises; the other dequeues, claims, and prints —
   concurrently, so printing starts while recording is still going. *)
let figure_4_2 () =
  let w = W.make_grades_world ~db_service:service ~print_service:service ~group_config () in
  let busy = (w.W.g_db_busy, w.W.g_print_busy) in
  let students = W.students n_students in
  let time =
    W.timed_run w.W.g_sched (fun () ->
        let record_grade = W.db_handle w ~agent:"client-db" () in
        let print = W.print_handle w ~agent:"client-pr" () in
        Core.Compose.producer_consumer w.W.g_sched
          ~produce:(fun emit ->
            List.iter
              (fun (stu, g) ->
                S.sleep w.W.g_sched produce_cost;
                emit (stu, R.Call.(submit (make record_grade (stu, g)))))
              students;
            R.flush record_grade;
            match R.synch record_grade with
            | Ok () -> ()
            | Error _ -> failwith "cannot_record")
          ~consume:(fun (stu, avg_p) ->
            let avg = P.claim_normal avg_p ~on_signal:(fun _ -> nan) in
            R.Call.(detach (make print (Printf.sprintf "%s: %.1f" stu avg))))
          ();
        match R.synch print with
        | Ok () -> ()
        | Error _ -> failwith "cannot_print")
  in
  (time, List.length !(w.W.g_printed), busy)

let print_timeline title t_end (db_busy, print_busy) =
  Printf.printf "\n%s\n" title;
  List.iter print_endline
    (Workloads.Timeline.render ~t_end
       [ ("db", !db_busy); ("printer", !print_busy) ])

let () =
  Printf.printf "grades pipeline, %d students (services %.1f ms, production %.1f ms)\n\n"
    n_students (service *. 1e3) (produce_cost *. 1e3);
  let t31, printed31, busy31 = figure_3_1 () in
  Printf.printf "Figure 3-1 (sequential loops): %8.2f ms  (%d lines printed)\n" (t31 *. 1e3)
    printed31;
  let t42, printed42, busy42 = figure_4_2 () in
  Printf.printf "Figure 4-2 (coenter):          %8.2f ms  (%d lines printed)\n" (t42 *. 1e3)
    printed42;
  Printf.printf "\noverlap speedup: %.2fx\n" (t31 /. t42);
  (* the busy timelines make the overlap visible: under the coenter the
     db and printer rows fill the same part of the axis *)
  let t_end = Float.max t31 t42 in
  print_timeline "Figure 3-1 utilisation:" t_end busy31;
  print_timeline "Figure 4-2 utilisation:" t_end busy42;
  print_endline
    "\n(the coenter overlaps recording with printing; the paper: \"this overlapping becomes\n\
    \ more important as the number of calls increases\")"
