(* Quickstart: promises and call-streams in five minutes.

   Build a tiny distributed world (two simulated nodes), register a
   typed handler on a server guardian, and walk through the paper's
   three call forms — RPC, stream call, send — plus claim, flush,
   synch, and what a declared exception looks like.

   Run with: dune exec examples/quickstart.exe *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module G = Argus.Guardian

(* The handler's declared exception: `signals (too_big(int))`. *)
type err = Too_big of int

let err_codec =
  Core.Sigs.(
    empty_signals
    |> signal_case ~name:"too_big" Xdr.int
         ~inj:(fun limit -> Too_big limit)
         ~proj:(fun (Too_big limit) -> Some limit))

(* square: port (int) returns (int) signals (too_big(int)) *)
let square_sig = Core.Sigs.hsig "square" ~arg:Xdr.int ~res:Xdr.int ~signals_c:err_codec ()

let () =
  (* 1. A world: virtual clock + simulated network + two nodes. *)
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = Cstream.Chanhub.create_hub ~net:(net, client_node) () in
  let server_hub = Cstream.Chanhub.create_hub ~net:(net, server_node) () in

  (* 2. A guardian with one typed handler. The port group's behavior —
     reply buffering, ordering, duplicate suppression, sharding — is one
     {!Cstream.Group_config.t} value built with [with_*] chains;
     [with_dedup] makes retried calls exactly-once. *)
  let server = G.create server_hub ~name:"math" in
  G.register_group server ~group:"ops"
    ~config:Cstream.Group_config.(default |> with_dedup)
    ();
  G.register server ~group:"ops" square_sig (fun ctx n ->
      S.sleep ctx.G.sched 0.5e-3 (* pretend to work *);
      if n > 1000 then Error (Too_big 1000) else Ok (n * n));

  (* 3. A client process. Everything below runs inside a fiber. *)
  ignore
    (S.spawn sched (fun () ->
         let agent = Core.Agent.create client_hub ~name:"quickstart" () in
         let square = R.bind agent ~dst:(Net.address server_node) ~gid:"ops" square_sig in

         (* --- RPC: send now, wait for the outcome. --- *)
         (match R.Call.(sync (make square 12)) with
         | P.Normal v -> Printf.printf "[%.2f ms] rpc: square 12 = %d\n" (S.now sched *. 1e3) v
         | P.Signal (Too_big l) -> Printf.printf "rpc: signalled too_big(%d)\n" l
         | P.Unavailable r | P.Failure r -> Printf.printf "rpc failed: %s\n" r);

         (* --- Stream calls: fire off many, claim later. --- *)
         let promises = List.init 10 (fun i -> R.Call.(submit (make square i))) in
         Printf.printf "[%.2f ms] 10 stream calls issued; caller keeps running\n"
           (S.now sched *. 1e3);
         R.flush square;
         (* do something useful in parallel with the calls... *)
         S.sleep sched 1e-3;
         (* ...then claim. Claims may happen in any order; promise i is
            always ready before promise i+1. *)
         List.iteri
           (fun i p ->
             match P.claim p with
             | P.Normal v -> Printf.printf "  square %d = %d\n" i v
             | P.Signal (Too_big _) | P.Unavailable _ | P.Failure _ ->
                 Printf.printf "  square %d failed\n" i)
           promises;

         (* --- A declared exception comes back typed. --- *)
         (match R.Call.(sync (make square 5000)) with
         | P.Signal (Too_big limit) ->
             Printf.printf "[%.2f ms] square 5000 signalled too_big(limit=%d)\n"
               (S.now sched *. 1e3) limit
         | P.Normal _ | P.Unavailable _ | P.Failure _ -> print_endline "unexpected");

         (* --- synch reports exceptions since the last synch: the
            too_big signal above is still pending. --- *)
         (match R.synch square with
         | Error `Exception_reply ->
             print_endline "synch: reports the earlier too_big (exception_reply), as §2 says"
         | Ok () | Error (`Broken _) -> print_endline "unexpected synch result");

         (* --- Sends: result value discarded, errors via synch. --- *)
         for i = 1 to 5 do
           R.Call.(detach (as_send (make square i)))
         done;
         (match R.synch square with
         | Ok () -> Printf.printf "[%.2f ms] synch: all sends completed normally\n"
                      (S.now sched *. 1e3)
         | Error `Exception_reply -> print_endline "synch: some send failed"
         | Error (`Broken reason) -> Printf.printf "stream broke: %s\n" reason)));

  (* 4. Run the simulation to quiescence. *)
  match S.run sched with
  | S.Completed -> print_endline "done."
  | S.Deadlocked _ -> print_endline "deadlock!"
  | S.Time_limit -> ()
