(* The three-level cascade of §4: read data from one guardian, compute
   on a second, write results to a third, with local filter work in
   between. Runs the same workload three ways and prints the timings:

   - staged loops (all reads, then all computes, then all writes),
   - process-per-stream (a coenter; the paper's recommendation),
   - process-per-item on a 4-CPU machine (§4.3's discussion: worth it
     only when filters are expensive and CPUs are plentiful).

   Run with: dune exec examples/cascade.exe *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module E = Workloads.Exp_compose

let n_items = 150

let filter_cost = 0.4e-3

(* All three server groups share one configuration value: deduplicating
   replies so a retried call is never applied twice. *)
let group_config = Cstream.Group_config.(default |> with_dedup)

let run variant ~cores =
  let cw = E.make_cascade ~group_config ~svc:0.2e-3 ~cores () in
  let time =
    Workloads.Fixtures.timed_run cw.E.cw_sched (fun () ->
        match variant with
        | `Staged -> E.cascade_staged cw ~n:n_items ~filter_cost
        | `Per_stream -> E.cascade_per_stream cw ~n:n_items ~filter_cost
        | `Per_item -> E.cascade_per_item cw ~n:n_items ~filter_cost ~proc_overhead:0.05e-3)
  in
  assert (!(cw.E.cw_written) = n_items);
  time

let () =
  Printf.printf "read -> compute -> write cascade: %d items, %.1f ms filters\n\n" n_items
    (filter_cost *. 1e3);
  let show name variant ~cores =
    Printf.printf "%-28s (%d CPU%s): %8.2f ms\n" name cores
      (if cores = 1 then "" else "s")
      (run variant ~cores *. 1e3)
  in
  show "staged loops" `Staged ~cores:1;
  show "process-per-stream" `Per_stream ~cores:1;
  show "process-per-item" `Per_item ~cores:1;
  print_newline ();
  show "process-per-stream" `Per_stream ~cores:4;
  show "process-per-item" `Per_item ~cores:4;
  print_newline ();
  print_endline
    "(per-stream wins on one CPU; per-item only pays off with lengthy filters on a\n\
    \ multiprocessor — exactly the §4.3 discussion)"
