(* The mailer guardian of §2.1: handlers send_mail and read_mail in the
   same port group, used by two clients.

   Demonstrates the stream sequencing rules: calls by ONE client on one
   stream run strictly in order (C1's read_mail waits for C1's
   send_mail), while calls by DIFFERENT clients run concurrently. Also
   shows a declared exception (no_such_user).

   Run with: dune exec examples/mailer.exe *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module G = Argus.Guardian

type mail_err = No_such_user of string

let mail_err_codec =
  Core.Sigs.(
    empty_signals
    |> signal_case ~name:"no_such_user" Xdr.string
         ~inj:(fun u -> No_such_user u)
         ~proj:(fun (No_such_user u) -> Some u))

(* send_mail: port (user, text) returns () signals (no_such_user) *)
let send_mail_sig =
  Core.Sigs.hsig "send_mail" ~arg:(Xdr.pair Xdr.string Xdr.string) ~res:Xdr.unit
    ~signals_c:mail_err_codec ()

(* read_mail: port (user) returns (string list) signals (no_such_user) *)
let read_mail_sig =
  Core.Sigs.hsig "read_mail" ~arg:Xdr.string ~res:(Xdr.list Xdr.string)
    ~signals_c:mail_err_codec ()

let () =
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let c1_node = Net.add_node net ~name:"c1" in
  let c2_node = Net.add_node net ~name:"c2" in
  let mailer_node = Net.add_node net ~name:"mailer" in
  let c1_hub = Cstream.Chanhub.create_hub ~net:(net, c1_node) () in
  let c2_hub = Cstream.Chanhub.create_hub ~net:(net, c2_node) () in
  let mailer_hub = Cstream.Chanhub.create_hub ~net:(net, mailer_node) () in

  (* The mailer guardian: mailboxes keyed by user. *)
  let mailer = G.create mailer_hub ~name:"mailer" in
  let boxes : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace boxes "alice" [];
  Hashtbl.replace boxes "ben" [];
  let known user = Hashtbl.mem boxes user in
  G.register mailer ~group:"mail" send_mail_sig (fun ctx (user, text) ->
      S.sleep ctx.G.sched 1e-3;
      if not (known user) then Error (No_such_user user)
      else begin
        Hashtbl.replace boxes user (text :: Option.value ~default:[] (Hashtbl.find_opt boxes user));
        Ok ()
      end);
  G.register mailer ~group:"mail" read_mail_sig (fun ctx user ->
      S.sleep ctx.G.sched 1e-3;
      match Hashtbl.find_opt boxes user with
      | None -> Error (No_such_user user)
      | Some msgs -> Ok (List.rev msgs));

  let dst = Net.address mailer_node in

  (* Client C1: sends mail to ben, then reads alice's box — on the SAME
     stream, so the read is processed after the send completes. *)
  ignore
    (S.spawn sched ~name:"C1" (fun () ->
         let agent = Core.Agent.create c1_hub ~name:"c1-agent" () in
         let send_mail = R.bind agent ~dst ~gid:"mail" send_mail_sig in
         let read_mail = R.bind agent ~dst ~gid:"mail" read_mail_sig in
         Printf.printf "[%5.2f ms] C1: streaming send_mail(ben) then read_mail(ben)\n"
           (S.now sched *. 1e3);
         let sent = R.Call.(submit (make send_mail ("ben", "lunch at noon?"))) in
         let inbox = R.Call.(submit (make read_mail "ben")) in
         R.flush read_mail;
         (match P.claim sent with
         | P.Normal () -> ()
         | P.Signal (No_such_user u) -> Printf.printf "C1: no such user %s\n" u
         | P.Unavailable r | P.Failure r -> Printf.printf "C1: %s\n" r);
         (match P.claim inbox with
         | P.Normal msgs ->
             Printf.printf "[%5.2f ms] C1: ben's mail after C1's send: [%s]\n"
               (S.now sched *. 1e3) (String.concat "; " msgs)
         | P.Signal (No_such_user u) -> Printf.printf "C1: no such user %s\n" u
         | P.Unavailable r | P.Failure r -> Printf.printf "C1: %s\n" r);
         (* An unknown user signals the declared exception. *)
         match R.Call.(sync (make send_mail ("zeke", "hello?"))) with
         | P.Signal (No_such_user u) ->
             Printf.printf "[%5.2f ms] C1: mail to unknown user signalled no_such_user(%s)\n"
               (S.now sched *. 1e3) u
         | P.Normal () | P.Unavailable _ | P.Failure _ -> print_endline "C1: unexpected"));

  (* Client C2 runs concurrently on its own stream: its read_mail does
     not wait for C1's calls. *)
  ignore
    (S.spawn sched ~name:"C2" (fun () ->
         let agent = Core.Agent.create c2_hub ~name:"c2-agent" () in
         let read_mail = R.bind agent ~dst ~gid:"mail" read_mail_sig in
         match R.Call.(sync (make read_mail "alice")) with
         | P.Normal msgs ->
             Printf.printf "[%5.2f ms] C2: alice's mail (concurrent with C1): [%s]\n"
               (S.now sched *. 1e3) (String.concat "; " msgs)
         | P.Signal (No_such_user u) -> Printf.printf "C2: no such user %s\n" u
         | P.Unavailable r | P.Failure r -> Printf.printf "C2: %s\n" r));

  match S.run sched with
  | S.Completed -> print_endline "done."
  | S.Deadlocked _ -> print_endline "deadlock!"
  | S.Time_limit -> ()
