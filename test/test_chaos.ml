(* Chaos gate: runs E7's invariant check — cross-incarnation
   exactly-once under seeded crash/partition/loss schedules — over
   several seeds. A trimmed run is part of the regular test suite;
   `dune build @chaos` runs the full E7 sweep. *)

let full = Array.exists (( = ) "--full") Sys.argv

let () =
  let ok =
    if full then Workloads.Exp_chaos.check ()
    else Workloads.Exp_chaos.check ~seeds:3 ~n:100 ~horizon:1.0 ()
  in
  if ok then print_endline "chaos invariants hold: no lost, no doubly-applied increments"
  else begin
    prerr_endline "chaos invariants VIOLATED (see `dune exec bin/experiments.exe -- -i E7`)";
    exit 1
  end
