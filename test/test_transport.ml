(* The transport seam (docs/TRANSPORT.md): one conformance suite run
   against both backends — Transport_sim over the simulated Net and
   Transport_tcp over real loopback sockets — plus the TCP-only framing
   and break cases, and the regression that pins Transport_sim to the
   published E12 byte figures (BENCH_wire.json), i.e. the seam refactor
   changed nothing below the stream layer.

   Every TCP test is guarded: if the sandbox forbids loopback sockets
   the test prints a SKIP line and passes. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module GC = Cstream.Group_config
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise
module Sup = Core.Supervisor
module T = Transport_tcp

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* --- sandbox guard -------------------------------------------------- *)

let tcp_available =
  lazy
    (match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
        match
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          Unix.listen fd 1
        with
        | () ->
            Unix.close fd;
            true
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            false))

let with_tcp name f =
  if Lazy.force tcp_available then f ()
  else Printf.printf "SKIP %s: loopback sockets unavailable in this sandbox\n%!" name

(* --- rigs: two connected endpoints on one scheduler ----------------- *)

type rig = {
  rg_sched : S.t;
  rg_a : Transport.t;
  rg_b : Transport.t;
  rg_fab : T.fabric option; (* Some for tcp *)
  rg_close : unit -> unit;
}

let sim_rig () =
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let na = Net.add_node net ~name:"a" in
  let nb = Net.add_node net ~name:"b" in
  {
    rg_sched = sched;
    rg_a = Transport_sim.endpoint net na;
    rg_b = Transport_sim.endpoint net nb;
    rg_fab = None;
    rg_close = (fun () -> ());
  }

let tcp_rig () =
  let sched = S.create () in
  let fab = T.create sched in
  let a = T.endpoint fab ~addr:0 ~name:"a" () in
  let b = T.endpoint fab ~addr:1 ~name:"b" () in
  T.set_peer fab ~addr:0 (T.listen_loopback fab ~addr:0);
  T.set_peer fab ~addr:1 (T.listen_loopback fab ~addr:1);
  { rg_sched = sched; rg_a = a; rg_b = b; rg_fab = Some fab; rg_close = (fun () -> T.close fab) }

let with_rig make f =
  let rig = make () in
  Fun.protect ~finally:rig.rg_close (fun () -> f rig)

(* --- raw interface conformance -------------------------------------- *)

(* Frames of assorted sizes, including ones far larger than the 3-byte
   chunk cap used by the framing test. *)
let mk_frame i = Printf.sprintf "frame-%04d-%s" i (String.make (i * 13 mod 577) 'x')

let ordered_delivery ?(n = 50) rig =
  let got = ref [] in
  let waiter = ref None in
  rig.rg_b.Transport.set_receiver (fun ~src frame ->
      check Alcotest.int "src address" rig.rg_a.Transport.addr src;
      got := frame :: !got;
      if List.length !got = n then
        match !waiter with Some w -> ignore (S.wake w () : bool) | None -> ());
  ignore
    (S.spawn rig.rg_sched ~name:"sender" (fun () ->
         for i = 0 to n - 1 do
           rig.rg_a.Transport.send ~dst:rig.rg_b.Transport.addr (mk_frame i)
         done;
         if List.length !got < n then S.suspend rig.rg_sched (fun w -> waiter := Some w)));
  run_ok rig.rg_sched;
  let got = List.rev !got in
  check Alcotest.int "frames delivered" n (List.length got);
  List.iteri
    (fun i f -> check Alcotest.string (Printf.sprintf "frame %d in order, intact" i) (mk_frame i) f)
    got

let test_ordered_sim () = with_rig sim_rig (ordered_delivery ?n:None)

let test_ordered_tcp () =
  with_tcp "ordered tcp" (fun () -> with_rig tcp_rig (ordered_delivery ?n:None))

(* Replies must ride the accepted connection: b answers a without any
   address-book entry for a (pure-client case). *)
let test_tcp_reply_rides_accepted_conn () =
  with_tcp "reply conn reuse" @@ fun () ->
  let sched = S.create () in
  let fab = T.create sched in
  Fun.protect ~finally:(fun () -> T.close fab) @@ fun () ->
  let a = T.endpoint fab ~addr:7 ~name:"client" () in
  let b = T.endpoint fab ~addr:8 ~name:"server" () in
  T.set_peer fab ~addr:8 (T.listen_loopback fab ~addr:8);
  (* no set_peer for 7: the only way back is the accepted connection *)
  b.Transport.set_receiver (fun ~src frame -> b.Transport.send ~dst:src ("echo:" ^ frame));
  let answer = ref None in
  let waiter = ref None in
  a.Transport.set_receiver (fun ~src:_ frame ->
      answer := Some frame;
      match !waiter with Some w -> ignore (S.wake w () : bool) | None -> ());
  ignore
    (S.spawn sched (fun () ->
         a.Transport.send ~dst:8 "ping";
         if !answer = None then S.suspend sched (fun w -> waiter := Some w)));
  run_ok sched;
  check Alcotest.(option string) "echoed over the accepted conn" (Some "echo:ping") !answer

(* Length-prefix framing must survive 3-byte reads and writes. *)
let test_tcp_partial_io () =
  with_tcp "partial io" @@ fun () ->
  with_rig tcp_rig @@ fun rig ->
  (match rig.rg_fab with Some fab -> T.set_max_chunk fab 3 | None -> assert false);
  ordered_delivery ~n:12 rig

(* Byte accounting on the TCP fabric. *)
let test_tcp_accounting () =
  with_tcp "accounting" @@ fun () ->
  with_rig tcp_rig @@ fun rig ->
  let n = 20 in
  let expected_bytes = ref 0 in
  for i = 0 to n - 1 do
    expected_bytes := !expected_bytes + String.length (mk_frame i)
  done;
  ordered_delivery ~n rig;
  let stats = match rig.rg_fab with Some fab -> T.stats fab | None -> assert false in
  check Alcotest.int "frames sent" n (Sim.Stats.peek stats "transport_frames_sent");
  check Alcotest.int "frames received" n (Sim.Stats.peek stats "transport_frames_received");
  check Alcotest.int "bytes sent" !expected_bytes (Sim.Stats.peek stats "transport_bytes_sent");
  check Alcotest.int "bytes received" !expected_bytes
    (Sim.Stats.peek stats "transport_bytes_received")

(* --- stream-layer conformance over both backends -------------------- *)

(* Window back-pressure: a 100-byte in-flight window against ~40-byte
   items must block the sender repeatedly, and acks must release it —
   on either substrate — until everything is delivered in order. *)
let backpressure rig =
  let hub_a = CH.create_hub ~transport:rig.rg_a () in
  let hub_b = CH.create_hub ~transport:rig.rg_b () in
  let delivered = ref [] in
  CH.on_connect hub_b ~label:"bp" (fun ic ->
      CH.set_deliver ic (fun items -> delivered := List.rev_append items !delivered));
  let cfg = { CH.default_config with CH.max_batch = 1; max_inflight_bytes = 100 } in
  let n = 25 in
  let over_window = ref 0 in
  ignore
    (S.spawn rig.rg_sched ~name:"bp-sender" (fun () ->
         let o = CH.connect hub_a ~dst:rig.rg_b.Transport.addr ~label:"bp" ~meta:"" cfg in
         for i = 1 to n do
           let item = Xdr.Str (Printf.sprintf "%02d|%s" i (String.make 32 'p')) in
           (match CH.await_window o ~bytes:40 with
           | Ok () -> ()
           | Error e -> Alcotest.failf "await_window: %s" e);
           if CH.inflight_bytes o + 40 > 100 then incr over_window;
           match CH.send o item with
           | Ok () -> ()
           | Error e -> Alcotest.failf "send: %s" e
         done));
  run_ok rig.rg_sched;
  check Alcotest.int "no admission over the window" 0 !over_window;
  let delivered = List.rev !delivered in
  check Alcotest.int "all items delivered" n (List.length delivered);
  List.iteri
    (fun idx item ->
      match item with
      | Xdr.Str s ->
          check Alcotest.int
            (Printf.sprintf "item %d in order" idx)
            (idx + 1)
            (int_of_string (String.sub s 0 2))
      | _ -> Alcotest.fail "unexpected item shape")
    delivered

let test_backpressure_sim () = with_rig sim_rig backpressure

let test_backpressure_tcp () = with_tcp "backpressure tcp" (fun () -> with_rig tcp_rig backpressure)

(* --- break -> resubmit -> dedup exactly-once over a real socket ----- *)

let work_sig = Core.Sigs.hsig0 "work" ~arg:Xdr.int ~res:Xdr.int

(* The TCP peer watch makes breaks instantaneous, but keep retransmits
   snappy too so any frame lost to a dying socket is resent quickly. *)
let fast_chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 4;
    flush_interval = 0.5e-3;
    retransmit_timeout = 4e-3;
    max_retries = 8;
  }

let fast_sup_cfg =
  {
    Sup.default_config with
    Sup.backoff_base = 2e-3;
    backoff_max = 20e-3;
    backoff_jitter = 0.0;
    retry_budget = 16;
  }

let test_tcp_exactly_once_across_break () =
  with_tcp "exactly-once" @@ fun () ->
  let sched = S.create () in
  let fab = T.create sched in
  Fun.protect ~finally:(fun () -> T.close fab) @@ fun () ->
  let a = T.endpoint fab ~addr:0 ~name:"client" () in
  let b = T.endpoint fab ~addr:1 ~name:"server" () in
  let hub_a = CH.create_hub ~transport:a () in
  let hub_b = CH.create_hub ~transport:b () in
  let server = G.create hub_b ~name:"server" in
  let n = 30 in
  let execs = Array.make n 0 in
  G.register_group server ~group:"main"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  G.register server ~group:"main" work_sig (fun _ctx i ->
      execs.(i) <- execs.(i) + 1;
      Ok (i + 1));
  T.set_peer fab ~addr:1 (T.listen_loopback fab ~addr:1);
  let breaks_observed = ref 0 in
  ignore
    (S.spawn sched ~name:"client" (fun () ->
         let ag = Core.Agent.create hub_a ~name:"eo" ~config:fast_chan_cfg () in
         let sup = Sup.supervise_agent ~config:fast_sup_cfg ag ~dst:1 ~gid:"main" in
         let h = R.bind ag ~dst:1 ~gid:"main" work_sig in
         let ps = List.init n (fun i -> R.stream_call h i) in
         R.flush h;
         List.iteri
           (fun i p ->
             (* Cut every socket mid-stream, once a third of the replies
                are in hand: client side (dialed, peer=1) and server side
                (accepted, peer=0). Supervision must reincarnate the
                stream over a fresh dial and resubmit what was in
                flight; dedup keeps re-executions at zero. *)
             if i = n / 3 then begin
               T.drop_peer_connections fab ~addr:1;
               T.drop_peer_connections fab ~addr:0;
               incr breaks_observed
             end;
             match P.claim p with
             | P.Normal v when v = i + 1 -> ()
             | P.Normal v -> Alcotest.failf "call %d returned %d" i v
             | P.Signal _ -> Alcotest.failf "call %d signalled" i
             | P.Unavailable r | P.Failure r -> Alcotest.failf "call %d failed: %s" i r)
           ps;
         Sup.stop sup));
  run_ok sched;
  check Alcotest.int "the break actually happened" 1 !breaks_observed;
  check Alcotest.bool "stream was reincarnated" true
    (Sim.Stats.peek (S.stats sched) "sup_restarts" >= 1);
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "call %d executed exactly once" i) 1 c)
    execs

(* --- regression: Transport_sim is byte-identical -------------------- *)

(* The figures published in BENCH_wire.json (n=400, seed 42) before the
   transport seam existed. If any of these move, the refactor changed
   wire behavior. *)
let e12_goldens =
  [
    ("RPC", false, 1600, 68098);
    ("RPC", true, 801, 51319);
    ("stream B=16", false, 100, 14833);
    ("stream B=16", true, 52, 13361);
    ("send B=16", false, 100, 14096);
    ("send B=16", true, 52, 12624);
    ("stream adaptive", false, 48, 13077);
    ("stream adaptive", true, 29, 12520);
  ]

let test_sim_byte_identical () =
  let rows = Workloads.Exp_wire.e12_rows ~n:400 () in
  List.iter
    (fun (mode, piggyback, msgs, bytes) ->
      match
        List.find_opt
          (fun r ->
            r.Workloads.Exp_wire.r_mode = mode && r.Workloads.Exp_wire.r_piggyback = piggyback)
          rows
      with
      | None -> Alcotest.failf "E12 row %s/%b missing" mode piggyback
      | Some r ->
          check Alcotest.int
            (Printf.sprintf "%s piggyback=%b msgs" mode piggyback)
            msgs r.Workloads.Exp_wire.r_msgs;
          check Alcotest.int
            (Printf.sprintf "%s piggyback=%b bytes" mode piggyback)
            bytes r.Workloads.Exp_wire.r_bytes)
    e12_goldens

(* E17's own invariant: whenever TCP runs, its frame/byte counts equal
   the sim prediction exactly. *)
let test_e17_counts_agree () =
  let rows = Workloads.Exp_transport.e17_rows ~n:60 ~depth:4 () in
  let by_backend w b =
    List.find_opt
      (fun r -> r.Workloads.Exp_transport.r_workload = w && r.Workloads.Exp_transport.r_backend = b)
      rows
  in
  List.iter
    (fun r ->
      let open Workloads.Exp_transport in
      if r.r_backend = "sim" then
        match by_backend r.r_workload "tcp" with
        | Some t when t.r_ok ->
            check Alcotest.int (r.r_workload ^ " msgs agree") r.r_msgs t.r_msgs;
            check Alcotest.int (r.r_workload ^ " bytes agree") r.r_bytes t.r_bytes
        | Some _ | None -> Printf.printf "SKIP %s: tcp row skipped\n%!" r.r_workload)
    rows

let () =
  Alcotest.run "transport"
    [
      ( "conformance",
        [
          Alcotest.test_case "ordered delivery (sim)" `Quick test_ordered_sim;
          Alcotest.test_case "ordered delivery (tcp)" `Quick test_ordered_tcp;
          Alcotest.test_case "reply rides accepted conn (tcp)" `Quick
            test_tcp_reply_rides_accepted_conn;
          Alcotest.test_case "framing under 3-byte partial io (tcp)" `Quick test_tcp_partial_io;
          Alcotest.test_case "frame/byte accounting (tcp)" `Quick test_tcp_accounting;
          Alcotest.test_case "window back-pressure (sim)" `Quick test_backpressure_sim;
          Alcotest.test_case "window back-pressure (tcp)" `Quick test_backpressure_tcp;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "break -> resubmit -> dedup over a real socket" `Quick
            test_tcp_exactly_once_across_break;
        ] );
      ( "sim-regression",
        [
          Alcotest.test_case "E12 byte figures match BENCH_wire.json" `Quick
            test_sim_byte_identical;
          Alcotest.test_case "E17 sim and tcp counts agree" `Quick test_e17_counts_agree;
        ] );
    ]
