(* Third-party handoff (docs/HANDOFF.md): a pipelined dependent call
   forwarded to the node that owns the dependent result. A defers a
   producer call on B, issues the consumer call directly on C with a
   handoff-annotated reference, and B pushes the produced outcome
   straight to C. These tests cover the happy path plus the edges the
   design note calls out: a producer crash between handoff and claim
   (the waiter gets the producer's abnormal outcome, not a hang), a
   resubmission racing the handoff (exactly-once must hold at both
   servers), and an epoch mismatch (the receiver refuses the notice and
   the sender silently falls back to proxying). *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module G = Argus.Guardian
module GC = Cstream.Group_config

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

let peek sched name = Sim.Stats.peek (S.stats sched) name

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fixture: client A, producer guardian on B, consumer guardian on C.
   The producer hands out fixed-size blobs; the consumer measures
   them. Both groups dedup, so a resubmitted call must join its cached
   entry instead of re-executing. *)

let blob_len = 64

let blob_of i =
  let tag = Printf.sprintf "%04d|" i in
  tag ^ String.make (blob_len - String.length tag) 'x'

let blob_sig = Core.Sigs.hsig0 "blob" ~arg:Xdr.int ~res:Xdr.string

let consume_sig = Core.Sigs.hsig0 "consume" ~arg:Xdr.string ~res:Xdr.int

(* Fast retransmit, so break detection fits in a few simulated ms. *)
let chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 4;
    flush_interval = 0.5e-3;
    retransmit_timeout = 4e-3;
    max_retries = 3;
  }

let group_config = GC.(default |> with_reply_config chan_cfg |> with_dedup)

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  a_node : Net.node;
  b_node : Net.node;
  c_node : Net.node;
  a_hub : CH.hub;
  b_hub : CH.hub;
  c_hub : CH.hub;
  mid_execs : (int, int) Hashtbl.t;
  sink_execs : (string, int) Hashtbl.t;
}

let make_world () =
  let sched = S.create () in
  let net = Net.create sched { Net.default_config with Net.wire_latency = 1e-3 } in
  let a_node = Net.add_node net ~name:"client" in
  let b_node = Net.add_node net ~name:"mid" in
  let c_node = Net.add_node net ~name:"sink" in
  let a_hub = CH.create_hub ~net:(net, a_node) () in
  let b_hub = CH.create_hub ~net:(net, b_node) () in
  let c_hub = CH.create_hub ~net:(net, c_node) () in
  let mid_execs = Hashtbl.create 16 and sink_execs = Hashtbl.create 16 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let mid = G.create b_hub ~name:"mid" and sink = G.create c_hub ~name:"sink" in
  G.register_group mid ~group:"main" ~config:group_config ();
  G.register mid ~group:"main" blob_sig (fun _ n ->
      bump mid_execs n;
      Ok (blob_of n));
  G.register_group sink ~group:"main" ~config:group_config ();
  G.register sink ~group:"main" consume_sig (fun _ s ->
      bump sink_execs s;
      Ok (String.length s));
  { sched; net; a_node; b_node; c_node; a_hub; b_hub; c_hub; mid_execs; sink_execs }

let handles w =
  let ag_b = Core.Agent.create w.a_hub ~name:"to-b" ~config:chan_cfg () in
  let ag_c = Core.Agent.create w.a_hub ~name:"to-c" ~config:chan_cfg () in
  ( R.bind ag_b ~dst:(Net.address w.b_node) ~gid:"main" blob_sig,
    R.bind ag_c ~dst:(Net.address w.c_node) ~gid:"main" consume_sig )

let dup_execs w =
  let extra count = max 0 (count - 1) in
  Hashtbl.fold (fun _ c acc -> acc + extra c) w.mid_execs 0
  + Hashtbl.fold (fun _ c acc -> acc + extra c) w.sink_execs 0

(* ------------------------------------------------------------------ *)
(* Happy path: defer the producer's reply, forward the consumer call,
   B pushes to C. The blob must never ride a reply to A. *)

let test_basic_forward () =
  let w = make_world () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let hB, hC = handles w in
         let pf = R.Call.(submit (defer_result (make hB 3))) in
         let pg = R.Call.(submit (piped hC (R.pipe pf))) in
         R.flush hC;
         got := Some (P.claim pg)));
  run_ok w.sched;
  check Alcotest.bool "consumer saw the blob" true (!got = Some (P.Normal blob_len));
  check Alcotest.int "one handoff issued" 1 (peek w.sched "handoff_calls");
  check Alcotest.int "one producer push" 1 (peek w.sched "handoff_forwards");
  check Alcotest.int "producer reply elided" 1 (peek w.sched "handoff_elided_replies");
  check Alcotest.int "push channel dialed" 1 (peek w.sched "handoff_streams_opened");
  check Alcotest.int "no fallback" 0 (peek w.sched "handoff_fallbacks");
  check Alcotest.int "no refusal" 0 (peek w.sched "handoff_refusals");
  check Alcotest.int "exactly-once" 0 (dup_execs w);
  check Alcotest.bool "producer executed" true (Hashtbl.mem w.mid_execs 3);
  check Alcotest.bool "consumer executed" true (Hashtbl.mem w.sink_execs (blob_of 3))

(* The deferred producer promise must not be claimable: its result was
   never shipped to A. Claiming it reports the programming error. *)
let test_deferred_claim_refused () =
  let w = make_world () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let hB, hC = handles w in
         let pf = R.Call.(submit (defer_result (make hB 4))) in
         let pg = R.Call.(submit (piped hC (R.pipe pf))) in
         R.flush hC;
         (match P.claim pg with
         | P.Normal _ -> ()
         | _ -> Alcotest.fail "consumer call failed");
         got := Some (P.claim pf)));
  run_ok w.sched;
  match !got with
  | Some (P.Failure r) ->
      check Alcotest.bool "explains defer_result" true (contains ~affix:"defer_result" r)
  | _ -> Alcotest.fail "claiming a deferred result should report Failure"

(* ------------------------------------------------------------------ *)
(* Producer crash between handoff and claim: B dies before producing.
   The A->B stream breaks; A relays the abnormal outcome to C, the
   parked consumer call completes abnormally — no hang, no execute. *)

let test_producer_crash_propagates () =
  let w = make_world () in
  let got = ref None in
  Net.crash w.net w.b_node;
  ignore
    (S.spawn w.sched (fun () ->
         let hB, hC = handles w in
         let pf = R.Call.(submit (defer_result (make hB 5))) in
         let pg = R.Call.(submit (piped hC (R.pipe pf))) in
         R.flush hC;
         got := Some (P.claim pg)));
  run_ok w.sched;
  (match !got with
  | Some (P.Unavailable _) -> ()
  | Some _ -> Alcotest.fail "consumer call should carry the producer's abnormal outcome"
  | None -> Alcotest.fail "consumer call never completed");
  check Alcotest.bool "consumer never executed" true (Hashtbl.length w.sink_execs = 0);
  check Alcotest.int "exactly-once" 0 (dup_execs w)

(* ------------------------------------------------------------------ *)
(* Resubmission racing the handoff: the A->B stream breaks after the
   calls left, the whole pipeline is replayed. The dedup caches and the
   push dedup at C must keep every execution at exactly one. *)

let test_resubmit_exactly_once () =
  let w = make_world () in
  let n = 4 in
  let got = ref [] in
  let addr_a = Net.address w.a_node and addr_b = Net.address w.b_node in
  ignore
    (S.spawn w.sched (fun () ->
         let hB, hC = handles w in
         let sB = R.stream hB in
         SE.set_preserve_on_break sB true;
         S.at w.sched 1.8e-3 (fun () -> Net.partition w.net addr_a addr_b);
         S.at w.sched 30e-3 (fun () -> Net.heal w.net addr_a addr_b);
         let pgs =
           List.init n (fun i ->
               let pf = R.Call.(submit (defer_result (make hB i))) in
               R.Call.(submit (piped hC (R.pipe pf))))
         in
         R.flush hC;
         (* a probe into the outage so the sender notices the break *)
         S.sleep w.sched 4e-3;
         let probe = R.Call.(submit (make hB 9999)) in
         R.flush hB;
         while SE.broken sB = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 32e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit sB : int);
         got := List.map P.claim pgs;
         ignore (P.claim probe : _ P.outcome)));
  run_ok w.sched;
  check Alcotest.int "all consumer calls completed" n (List.length !got);
  List.iteri
    (fun i o ->
      check Alcotest.bool (Printf.sprintf "call %d normal" i) true (o = P.Normal blob_len))
    !got;
  check Alcotest.int "exactly-once at both servers" 0 (dup_execs w);
  check Alcotest.bool "replayed pushes joined the dedup cache" true
    (peek w.sched "handoff_dedup_joins" >= 1);
  check Alcotest.int "no fallback" 0 (peek w.sched "handoff_fallbacks")

(* ------------------------------------------------------------------ *)
(* Epoch mismatch: B's hub is on a different handoff epoch than the
   annotation says. B refuses the notice; A silently falls back to
   proxying the outcome itself. Same answer, one counter each. *)

let test_epoch_refusal_falls_back () =
  let w = make_world () in
  CH.set_handoff_epoch w.b_hub 99;
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let hB, hC = handles w in
         let pf = R.Call.(submit (defer_result (make hB 6))) in
         let pg = R.Call.(submit (piped hC (R.pipe pf))) in
         R.flush hC;
         got := Some (P.claim pg)));
  run_ok w.sched;
  check Alcotest.bool "fallback still answers" true (!got = Some (P.Normal blob_len));
  check Alcotest.int "receiver refused" 1 (peek w.sched "handoff_refusals");
  check Alcotest.int "sender fell back" 1 (peek w.sched "handoff_fallbacks");
  (* the one push comes from A relaying the redeemed outcome, not B *)
  check Alcotest.int "outcome pushed by the sender" 1 (peek w.sched "handoff_forwards");
  check Alcotest.int "exactly-once" 0 (dup_execs w)

(* ------------------------------------------------------------------ *)
(* E19 invariants: the acceptance numbers behind the experiment table.
   Handoff must beat proxying on bytes and on completion time (one full
   hop per delegation at 1 ms wire latency), with clean exactly-once
   accounting in the forced-break leg. TCP rows self-skip in a
   socket-less sandbox. *)

let test_e19_invariants () =
  let rows = Workloads.Exp_handoff.e19_rows ~n:4 ~n_break:4 () in
  let find mode backend =
    List.find_opt
      (fun r -> r.Workloads.Exp_handoff.r_mode = mode && r.r_backend = backend)
      rows
  in
  (match (find "proxy" "sim", find "handoff" "sim") with
  | Some proxy, Some handoff ->
      check Alcotest.bool "sim: strictly fewer bytes" true (handoff.r_bytes < proxy.r_bytes);
      check Alcotest.bool
        (Printf.sprintf "sim: >=1 hop less per delegation (proxy %.3f ms, handoff %.3f ms)"
           (1e3 *. proxy.r_time) (1e3 *. handoff.r_time))
        true
        (handoff.r_time <= proxy.r_time -. (4.0 *. 1e-3));
      check Alcotest.bool "sim: forwards counted" true (handoff.r_forwards > 0)
  | _ -> Alcotest.fail "sim rows missing");
  (match (find "proxy" "tcp", find "handoff" "tcp") with
  | Some proxy, Some handoff when proxy.Workloads.Exp_handoff.r_ok && handoff.r_ok ->
      check Alcotest.bool "tcp: strictly fewer bytes" true (handoff.r_bytes < proxy.r_bytes)
  | _ -> () (* sandboxed: tcp legs are skip rows *));
  List.iter
    (fun r ->
      if r.Workloads.Exp_handoff.r_ok then (
        check Alcotest.int (r.r_mode ^ "/" ^ r.r_backend ^ ": exactly-once") 0 r.r_dup_execs;
        check Alcotest.int (r.r_mode ^ "/" ^ r.r_backend ^ ": no fallback") 0 r.r_fallbacks))
    rows

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "handoff"
    [
      ( "forward",
        [
          Alcotest.test_case "dependent call handed to the owner" `Quick test_basic_forward;
          Alcotest.test_case "deferred result cannot be claimed" `Quick
            test_deferred_claim_refused;
        ] );
      ( "edges",
        [
          Alcotest.test_case "producer crash propagates, no hang" `Quick
            test_producer_crash_propagates;
          Alcotest.test_case "resubmit across break: exactly-once" `Quick
            test_resubmit_exactly_once;
          Alcotest.test_case "old epoch refused, falls back to proxy" `Quick
            test_epoch_refusal_falls_back;
        ] );
      ( "experiment",
        [ Alcotest.test_case "E19 acceptance invariants" `Quick test_e19_invariants ] );
    ]
