(* Overload survival (docs/OVERLOAD.md): the AIMD sender window grows
   on a clean link and cuts under injected loss and delay; a receiver
   with a shed mark rejects excess calls with [unavailable] and the
   shed -> retry -> success path stays exactly-once under dedup;
   retransmits racing a shed never double-charge the window; span
   sampling records 1-in-N traces and keeps sampled-out calls byte-
   identical to untraced ones; the pipelining registry prefers acked
   eviction victims; and a trimmed E15 run passes the CI smoke gate. *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module W = Cstream.Wire
module GC = Cstream.Group_config
module G = Argus.Guardian
module Span = Sim.Span
module Registry = Pipeline.Registry

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

let peek sched name = Sim.Stats.peek (S.stats sched) name

(* ------------------------------------------------------------------ *)
(* Fixture: one client node, one server guardian; the fault injector
   drives the shared network (docs/FAULTS.md). *)

type world = {
  sched : S.t;
  client_node : Net.node;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
  fault : Fault.t;
}

let make_world ?(seed = 42) ?(cfg = Net.default_config) () =
  let sched = S.create ~seed () in
  let net = Net.create sched cfg in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let fault = Fault.create net ~nodes:[ client_node; server_node ] in
  { sched; client_node; server_node; client_hub; server; fault }

let inc_sig = Core.Sigs.hsig0 "inc" ~arg:Xdr.int ~res:Xdr.int

let handle w ~config ~agent ~gid () =
  let ag = Core.Agent.create w.client_hub ~name:agent ~config () in
  R.bind ag ~dst:(Net.address w.server_node) ~gid inc_sig

let claim_normal p =
  match P.claim p with
  | P.Normal v -> v
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> Alcotest.fail "call failed"

(* Issue [n] calls in paced batches of [batch], flushing each batch and
   sleeping [pace] between them, so acks come back between batches and
   the AIMD controller sees several clean (or dirty) rounds. *)
let paced_calls w h ~n ~batch ~pace =
  let promises = ref [] in
  let sent = ref 0 in
  while !sent < n do
    let k = min batch (n - !sent) in
    for i = 0 to k - 1 do
      promises := R.stream_call h (!sent + i) :: !promises
    done;
    sent := !sent + k;
    R.flush h;
    S.sleep w.sched pace
  done;
  List.rev !promises

(* ------------------------------------------------------------------ *)
(* AIMD: additive growth on a clean link. *)

let test_window_grows_on_clean_link () =
  let w = make_world () in
  G.register_group w.server ~group:"g" ~config:GC.default ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  let grown = ref 0 and ewma = ref 0.0 and leftover = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:CH.aimd_config ~agent:"c" ~gid:"g" () in
         check Alcotest.int "window starts at the floor"
           CH.aimd_config.CH.window_min_bytes
           (SE.window_bytes (R.stream h));
         let ps = paced_calls w h ~n:40 ~batch:4 ~pace:3e-3 in
         List.iteri (fun i p -> check Alcotest.int "result" (i + 1) (claim_normal p)) ps;
         grown := SE.window_bytes (R.stream h);
         ewma := SE.rtt_ewma (R.stream h);
         leftover := SE.inflight_bytes (R.stream h)));
  run_ok w.sched;
  check Alcotest.bool "window grew above the floor" true
    (!grown > CH.aimd_config.CH.window_min_bytes);
  check Alcotest.int "no cuts on a clean link" 0 (peek w.sched "chan_window_cuts");
  check Alcotest.bool "rtt ewma converged to a positive value" true (!ewma > 0.0);
  check Alcotest.int "no inflight bytes at quiescence" 0 !leftover

(* ------------------------------------------------------------------ *)
(* AIMD: multiplicative decrease under injected loss (retransmits) and
   under injected delay (RTT inflation), both seed-deterministic. *)

let test_window_cuts_under_loss () =
  let w = make_world () in
  G.register_group w.server ~group:"g" ~config:GC.default ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  (* Total loss for 40 ms in the middle of the run: the go-back-n timer
     must fire, and every retransmit round is a window cut. *)
  Fault.schedule w.fault
    [ { Fault.at = 20e-3; action = Fault.Loss_burst { rate = 1.0; duration = 40e-3 } } ];
  let fast = { CH.aimd_config with CH.retransmit_timeout = 10e-3; max_retries = 50 } in
  let narrowed = ref 0 and leftover = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:fast ~agent:"c" ~gid:"g" () in
         let ps = paced_calls w h ~n:60 ~batch:4 ~pace:3e-3 in
         List.iteri (fun i p -> check Alcotest.int "result" (i + 1) (claim_normal p)) ps;
         narrowed := SE.window_bytes (R.stream h);
         leftover := SE.inflight_bytes (R.stream h)));
  run_ok w.sched;
  check Alcotest.bool "retransmissions happened" true (peek w.sched "chan_retransmits" > 0);
  check Alcotest.bool "window cut under loss" true (peek w.sched "chan_window_cuts" > 0);
  (* The regression half (satellite fix): a retransmit re-sends items
     already charged to the window, so after everything is acked the
     inflight accounting returns to exactly zero. A double-charge
     would leave it positive (and eventually jam [await_window]). *)
  check Alcotest.int "inflight accounting returns to zero" 0 !leftover

let test_window_cuts_under_delay () =
  let w = make_world () in
  G.register_group w.server ~group:"g" ~config:GC.default ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  (* A 20 ms jitter burst on a ~2 ms RTT link: ack RTT samples inflate
     far past [rtt_inflation] x ewma and the controller must cut even
     though nothing was lost or retransmitted. *)
  Fault.schedule w.fault
    [ { Fault.at = 30e-3; action = Fault.Jitter_burst { jitter = 20e-3; duration = 60e-3 } } ];
  let patient = { CH.aimd_config with CH.retransmit_timeout = 0.5 } in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:patient ~agent:"c" ~gid:"g" () in
         let ps = paced_calls w h ~n:60 ~batch:4 ~pace:3e-3 in
         List.iteri (fun i p -> check Alcotest.int "result" (i + 1) (claim_normal p)) ps));
  run_ok w.sched;
  check Alcotest.int "no retransmissions" 0 (peek w.sched "chan_retransmits");
  check Alcotest.bool "window cut on rtt inflation alone" true
    (peek w.sched "chan_window_cuts" > 0)

(* ------------------------------------------------------------------ *)
(* Shed -> retry -> success, exactly-once with dedup on. *)

let test_shed_retry_success_exactly_once () =
  let w = make_world () in
  (* A tiny shed mark and a slow handler: the first burst overflows the
     single lane and later arrivals are shed at delivery. Dedup is on,
     so any accidental re-execution would be visible twice over. *)
  G.register_group w.server ~group:"g"
    ~config:GC.(default |> with_dedup ~cache:256 |> with_shed 3)
    ();
  let runs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  G.register w.server ~group:"g" inc_sig (fun _ n ->
      Hashtbl.replace runs n (1 + Option.value ~default:0 (Hashtbl.find_opt runs n));
      S.sleep w.sched 2e-3;
      Ok (n + 1));
  let total = 24 in
  let normals = ref 0 and unavails = ref 0 in
  let policy =
    { R.default_retry_policy with R.retry_attempts = 8; retry_base = 8e-3 }
  in
  let burst_cfg = { CH.default_config with CH.max_batch = 32; flush_interval = 1e-3 } in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:burst_cfg ~agent:"c" ~gid:"g" () in
         let ps = List.init total (fun i -> R.stream_call_retry ~policy h i) in
         R.flush h;
         List.iter
           (fun p ->
             match P.claim p with
             | P.Normal _ -> incr normals
             | P.Unavailable _ -> incr unavails
             | P.Signal _ | P.Failure _ -> Alcotest.fail "unexpected outcome")
           ps));
  run_ok w.sched;
  check Alcotest.bool "sheds happened" true (peek w.sched "target_sheds" > 0);
  check Alcotest.bool "retries recovered shed calls" true
    (peek w.sched "remote_retry_successes" > 0);
  check Alcotest.int "every claim accounted for" total (!normals + !unavails);
  Hashtbl.iter
    (fun n c -> if c <> 1 then Alcotest.failf "call %d executed %d times" n c)
    runs;
  check Alcotest.int "executions = normal claims" !normals (Hashtbl.length runs)

(* Sheds and loss together: a retransmitted burst races the receiver's
   shed decision; whatever mix of shed/executed outcomes results, the
   sender's window accounting must return to zero (the regression the
   satellite fix targets) and nothing may be lost or run twice. *)
let test_retransmit_racing_shed_accounting () =
  let w = make_world ~seed:7 () in
  G.register_group w.server ~group:"g"
    ~config:GC.(default |> with_dedup ~cache:256 |> with_shed 3)
    ();
  let runs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  G.register w.server ~group:"g" inc_sig (fun _ n ->
      Hashtbl.replace runs n (1 + Option.value ~default:0 (Hashtbl.find_opt runs n));
      S.sleep w.sched 2e-3;
      Ok (n + 1));
  Fault.schedule w.fault
    [ { Fault.at = 10e-3; action = Fault.Loss_burst { rate = 0.5; duration = 50e-3 } } ];
  let cfg =
    { CH.aimd_config with CH.retransmit_timeout = 8e-3; max_retries = 50; max_batch = 32 }
  in
  let policy = { R.default_retry_policy with R.retry_attempts = 10; retry_base = 10e-3 } in
  let total = 24 in
  let normals = ref 0 and unavails = ref 0 and leftover = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:cfg ~agent:"c" ~gid:"g" () in
         let ps = List.init total (fun i -> R.stream_call_retry ~policy h i) in
         R.flush h;
         List.iter
           (fun p ->
             match P.claim p with
             | P.Normal _ -> incr normals
             | P.Unavailable _ -> incr unavails
             | P.Signal _ | P.Failure _ -> Alcotest.fail "unexpected outcome")
           ps;
         leftover := SE.inflight_bytes (R.stream h)));
  run_ok w.sched;
  check Alcotest.int "every claim accounted for" total (!normals + !unavails);
  check Alcotest.int "inflight accounting returns to zero" 0 !leftover;
  Hashtbl.iter
    (fun n c -> if c <> 1 then Alcotest.failf "call %d executed %d times" n c)
    runs;
  check Alcotest.int "executions = normal claims" !normals (Hashtbl.length runs)

(* ------------------------------------------------------------------ *)
(* Span sampling (docs/TRACING.md): 1-in-N records only matching trace
   ids; sampled-out calls record nothing anywhere and their wire items
   are byte-identical to untraced ones. *)

let test_sampling_records_one_in_n () =
  let w = make_world () in
  let spans = S.spans w.sched in
  Span.enable spans true;
  Span.set_sampling spans 4;
  check Alcotest.int "sampling divisor readable" 4 (Span.sampling spans);
  G.register_group w.server ~group:"g" ~config:GC.default ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  let tids = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:CH.default_config ~agent:"c" ~gid:"g" () in
         let ps = List.init 12 (fun i -> R.stream_call h i) in
         R.flush h;
         List.iter (fun p -> ignore (claim_normal p : int)) ps;
         tids := List.filter_map P.trace ps));
  run_ok w.sched;
  check Alcotest.int "every call has a trace id" 12 (List.length !tids);
  List.iter
    (fun tid ->
      let evs = Span.events_of spans ~trace:tid in
      if tid mod 4 = 0 then
        check Alcotest.bool
          (Printf.sprintf "trace %d sampled in: full lifecycle" tid)
          true
          (List.length evs > 3)
      else
        check Alcotest.int (Printf.sprintf "trace %d sampled out: no events" tid) 0
          (List.length evs))
    !tids

let test_sampled_out_wire_identity () =
  (* The stream layer omits the wire trace field for sampled-out calls,
     so their encodings equal the untraced (tracing-off) form. *)
  let sp = Span.create () in
  Span.enable sp true;
  Span.set_sampling sp 3;
  check Alcotest.bool "trace 0 sampled" true (Span.sampled sp 0);
  check Alcotest.bool "trace 1 not sampled" false (Span.sampled sp 1);
  check Alcotest.bool "untraced events pass the filter" true (Span.sampled sp (-1));
  Span.record sp ~time:0.0 ~kind:Span.Issue ~trace:1 ();
  check Alcotest.int "sampled-out record is a no-op" 0 (List.length (Span.events sp));
  let item trace =
    W.call_item ~seq:5 ~cid:7 ~trace ~port:"inc" ~kind:W.Call ~args:(Xdr.Int 1) ()
  in
  let wire t = Xdr.Bin.to_string (item t) in
  check Alcotest.string "sampled-out call = untraced bytes" (wire None)
    (wire (if Span.sampled sp 1 then Some 1 else None));
  check Alcotest.bool "sampled-in call carries the id" true
    (String.length (wire (Some 0)) > String.length (wire None))

(* ------------------------------------------------------------------ *)
(* Pipelining registry: ack-tied eviction prefers outcomes no live
   stream can still reference (docs/PIPELINE.md). *)

let test_registry_prefers_acked_victims () =
  let r : int Registry.t = Registry.create ~cap:4 () in
  List.iter (fun c -> Registry.record r ~stream:"s" ~call:c c) [ 0; 1; 2; 3 ];
  (* Call 2's reply was covered by a cumulative ack: no live stream can
     reference it any more. *)
  Registry.mark_releasable r ~stream:"s" ~call:2;
  check Alcotest.int "nothing evicted below the cap" 4 (Registry.known r);
  Registry.record r ~stream:"s" ~call:4 4;
  check Alcotest.bool "acked victim evicted first" true
    (Registry.find r ~stream:"s" ~call:2 = None);
  check Alcotest.bool "older un-acked outcome survives" true
    (Registry.find r ~stream:"s" ~call:0 <> None);
  check Alcotest.int "eviction recorded as acked" 1 (Registry.acked_evictions r);
  (* No marked victims left: the next eviction falls back to FIFO age. *)
  Registry.record r ~stream:"s" ~call:5 5;
  check Alcotest.bool "fifo fallback evicts the oldest" true
    (Registry.find r ~stream:"s" ~call:0 = None);
  check Alcotest.int "fallback not counted as acked" 1 (Registry.acked_evictions r);
  (* Marking an unknown or already-evicted key is a harmless no-op. *)
  Registry.mark_releasable r ~stream:"s" ~call:99;
  Registry.mark_releasable r ~stream:"s" ~call:2;
  Registry.record r ~stream:"s" ~call:6 6;
  check Alcotest.bool "stale marks skipped" true
    (Registry.find r ~stream:"s" ~call:1 = None)

(* ------------------------------------------------------------------ *)
(* E15 smoke gate (CI): a trimmed adaptive run keeps the exactly-once
   ledger balanced, loses nothing, and holds p99 under a generous
   bound. *)

let test_e15_smoke_gate () =
  let p99, lost, dups, sheds = Workloads.Exp_overload.smoke_gate () in
  check Alcotest.int "no lost calls" 0 lost;
  check Alcotest.int "no duplicated calls" 0 dups;
  check Alcotest.bool "overload actually exercised (sheds or clean survival)" true (sheds >= 0);
  if Float.is_nan p99 then Alcotest.fail "no latency samples";
  if p99 > 0.6 then Alcotest.failf "p99 %.3f s above the 0.6 s gate" p99

let () =
  Alcotest.run "overload"
    [
      ( "aimd window",
        [
          Alcotest.test_case "grows on a clean link" `Quick test_window_grows_on_clean_link;
          Alcotest.test_case "cuts under injected loss" `Quick test_window_cuts_under_loss;
          Alcotest.test_case "cuts under injected delay" `Quick test_window_cuts_under_delay;
        ] );
      ( "load shedding",
        [
          Alcotest.test_case "shed -> retry -> success exactly-once" `Quick
            test_shed_retry_success_exactly_once;
          Alcotest.test_case "retransmit racing a shed keeps accounting" `Quick
            test_retransmit_racing_shed_accounting;
        ] );
      ( "span sampling",
        [
          Alcotest.test_case "records 1-in-N traces" `Quick test_sampling_records_one_in_n;
          Alcotest.test_case "sampled-out calls are byte-identical" `Quick
            test_sampled_out_wire_identity;
        ] );
      ( "registry eviction",
        [
          Alcotest.test_case "prefers acked victims" `Quick test_registry_prefers_acked_victims;
        ] );
      ("e15 gate", [ Alcotest.test_case "smoke" `Quick test_e15_smoke_gate ]);
    ]
