(* Tests for the core promise library: promises, typed remote calls,
   fork, coenter, composition — and the guardian layer they run
   against. Includes the paper's grades example (Figures 3-1 and 4-2)
   and the fork-composition termination problem (Figure 4-1). *)

module S = Sched.Scheduler
module P = Core.Promise
module CH = Cstream.Chanhub

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* ------------------------------------------------------------------ *)
(* Promise basics *)

let test_promise_blocked_then_ready () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  check Alcotest.bool "blocked" false (P.ready p);
  check Alcotest.bool "peek none" true (P.peek p = None);
  P.resolve p (P.Normal 7);
  check Alcotest.bool "ready" true (P.ready p);
  check Alcotest.bool "peek" true (P.peek p = Some (P.Normal 7))

let test_promise_claim_blocks_until_ready () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  let got = ref 0 and at = ref 0.0 in
  ignore
    (S.spawn sched (fun () ->
         (match P.claim p with P.Normal v -> got := v | _ -> Alcotest.fail "not normal");
         at := S.now sched));
  ignore
    (S.spawn sched (fun () ->
         S.sleep sched 2.0;
         P.resolve p (P.Normal 9)));
  run_ok sched;
  check Alcotest.int "value" 9 !got;
  check (Alcotest.float 1e-9) "claim waited" 2.0 !at

let test_promise_multi_claim_same_outcome () =
  (* "A promise can be claimed multiple times; the same outcome will
     occur each time" (§3). *)
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  let results = ref [] in
  let claim_once () =
    (* Bind before consing: [claim] suspends, and the cons must read
       [results] after resumption, not before. *)
    let o = P.claim p in
    results := o :: !results
  in
  for _ = 1 to 3 do
    ignore (S.spawn sched claim_once)
  done;
  ignore (S.spawn sched (fun () -> P.resolve p (P.Normal 5)));
  run_ok sched;
  (* claim again after ready *)
  ignore (S.spawn sched claim_once);
  run_ok sched;
  check Alcotest.int "four claims" 4 (List.length !results);
  List.iter (fun o -> check Alcotest.bool "same" true (o = P.Normal 5)) !results

let test_promise_resolve_twice_rejected () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  P.resolve p (P.Normal 1);
  match P.resolve p (P.Normal 2) with
  | () -> Alcotest.fail "second resolve must be rejected"
  | exception Invalid_argument _ -> ()

let test_promise_claim_normal_dispatch () =
  let sched = S.create () in
  let trail = ref [] in
  ignore
    (S.spawn sched (fun () ->
         let normal : (int, string) P.t = P.resolved sched (P.Normal 1) in
         trail := ("normal", P.claim_normal normal ~on_signal:(fun _ -> -1)) :: !trail;
         let signaled : (int, string) P.t = P.resolved sched (P.Signal "boom") in
         trail := ("signal", P.claim_normal signaled ~on_signal:(fun _ -> 42)) :: !trail;
         let unavail : (int, string) P.t = P.resolved sched (P.Unavailable "down") in
         (try ignore (P.claim_normal unavail ~on_signal:(fun _ -> -1) : int)
          with P.Unavailable_exn r -> trail := ("unavailable:" ^ r, 0) :: !trail);
         let failed : (int, string) P.t = P.resolved sched (P.Failure "dead") in
         try ignore (P.claim_normal failed ~on_signal:(fun _ -> -1) : int)
         with P.Failure_exn r -> trail := ("failure:" ^ r, 0) :: !trail));
  run_ok sched;
  check
    Alcotest.(list (pair string int))
    "dispatch"
    [ ("normal", 1); ("signal", 42); ("unavailable:down", 0); ("failure:dead", 0) ]
    (List.rev !trail)

let test_promise_claim_timeout () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  let first = ref None and second = ref None and resolved_at = ref 0.0 in
  ignore
    (S.spawn sched (fun () ->
         (* Times out: the promise is still blocked at t=1. *)
         first := Some (P.claim_timeout p ~timeout:1.0);
         check Alcotest.bool "promise still blocked after timeout" false (P.ready p);
         (* The real outcome lands at t=2; this claim sees it at once. *)
         second := Some (P.claim_timeout p ~timeout:10.0);
         resolved_at := S.now sched));
  ignore
    (S.spawn sched (fun () ->
         S.sleep sched 2.0;
         P.resolve p (P.Normal 3)));
  run_ok sched;
  (match !first with
  | Some (P.Unavailable _) -> ()
  | _ -> Alcotest.fail "first claim should time out as Unavailable");
  (match !second with
  | Some (P.Normal 3) -> ()
  | _ -> Alcotest.fail "second claim should see the real outcome");
  check (Alcotest.float 1e-9) "woken by resolve, not the timer" 2.0 !resolved_at;
  (* A claim on an already-ready promise never invents a timeout. *)
  ignore
    (S.spawn sched (fun () ->
         match P.claim_timeout p ~timeout:0.0 with
         | P.Normal 3 -> ()
         | _ -> Alcotest.fail "ready promise must return its outcome"));
  run_ok sched

let test_promise_claim_timeout_racing_claimants () =
  (* Several fibers claim the same promise with staggered timeouts
     while the resolve lands in the middle of the stagger: claimants
     whose deadline passed first degrade to Unavailable, everyone still
     waiting at resolve time gets the real value at that instant, and a
     timed-out claimant's re-claim sees the real value too. First-wake-
     wins must hold per claimant — no outcome is delivered twice and
     the losing timer is a no-op. *)
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  let outcomes : (float * float * (int, Core.Sigs.nothing) P.outcome) list ref = ref [] in
  let claimant timeout =
    ignore
      (S.spawn sched (fun () ->
           let o = P.claim_timeout p ~timeout in
           outcomes := (timeout, S.now sched, o) :: !outcomes))
  in
  List.iter claimant [ 1.0; 2.0; 4.0; 6.0; 9.0 ];
  let reclaim = ref None in
  ignore
    (S.spawn sched (fun () ->
         (* The same fiber that timed out comes back for the value. *)
         (match P.claim_timeout p ~timeout:2.0 with
         | P.Unavailable _ -> ()
         | _ -> Alcotest.fail "short claim should have timed out");
         (* Bind before reading the clock: the claim suspends first. *)
         let o = P.claim_timeout p ~timeout:60.0 in
         reclaim := Some (o, S.now sched)));
  ignore
    (S.spawn sched (fun () ->
         S.sleep sched 5.0;
         P.resolve p (P.Normal 42)));
  run_ok sched;
  List.iter
    (fun (timeout, at, o) ->
      if timeout < 5.0 then begin
        check (Alcotest.float 1e-9) (Printf.sprintf "timeout %.0f fired on time" timeout)
          timeout at;
        match o with
        | P.Unavailable _ -> ()
        | _ -> Alcotest.failf "timeout %.0f should degrade to Unavailable" timeout
      end
      else begin
        check (Alcotest.float 1e-9)
          (Printf.sprintf "timeout %.0f woken by the resolve" timeout)
          5.0 at;
        check Alcotest.bool
          (Printf.sprintf "timeout %.0f sees the value" timeout)
          true
          (o = P.Normal 42)
      end)
    !outcomes;
  check Alcotest.int "every claimant completed exactly once" 5 (List.length !outcomes);
  (match !reclaim with
  | Some (P.Normal 42, at) -> check (Alcotest.float 1e-9) "re-claim woken by resolve" 5.0 at
  | _ -> Alcotest.fail "timed-out claimant's re-claim must get the real value");
  check Alcotest.bool "promise ready exactly once" true (P.peek p = Some (P.Normal 42))

let test_promise_claim_deadline_expired () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  ignore
    (S.spawn sched (fun () ->
         S.sleep sched 5.0;
         (* Deadline already in the past: degrade immediately. *)
         match P.claim_deadline p ~deadline:1.0 with
         | P.Unavailable _ -> check (Alcotest.float 1e-9) "no wait" 5.0 (S.now sched)
         | _ -> Alcotest.fail "expired deadline should be Unavailable"));
  run_ok sched

let test_promise_map_all_both () =
  let sched = S.create () in
  ignore
    (S.spawn sched (fun () ->
         let p : (int, string) P.t = P.resolved sched (P.Normal 10) in
         let doubled = P.map sched (fun x -> 2 * x) p in
         check Alcotest.bool "map" true (P.claim doubled = P.Normal 20);
         let q = P.resolved sched (P.Normal 5) in
         check Alcotest.bool "both" true (P.claim (P.both sched p q) = P.Normal (10, 5));
         let bad : (int, string) P.t = P.resolved sched (P.Signal "s") in
         check Alcotest.bool "both failure" true (P.claim (P.both sched p bad) = P.Signal "s");
         let xs = List.map (fun i -> P.resolved sched (P.Normal i)) [ 1; 2; 3 ] in
         check Alcotest.bool "all" true
           (P.claim (P.all sched xs) = (P.Normal [ 1; 2; 3 ] : (int list, string) P.outcome));
         check Alcotest.bool "all empty" true
           (P.claim (P.all sched ([] : (int, string) P.t list)) = P.Normal [])));
  run_ok sched

let test_promise_on_ready_after_resolve () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  P.resolve p (P.Normal 3);
  let hits = ref 0 in
  P.on_ready p (fun _ -> incr hits);
  P.on_ready p (fun _ -> incr hits);
  check Alcotest.int "hooks fire immediately when ready" 2 !hits

let test_promise_hooks_fire_in_registration_order () =
  let sched = S.create () in
  let p : (int, Core.Sigs.nothing) P.t = P.create sched in
  let order = ref [] in
  P.on_ready p (fun _ -> order := 1 :: !order);
  P.on_ready p (fun _ -> order := 2 :: !order);
  P.resolve p (P.Normal 0);
  check Alcotest.(list int) "registration order" [ 1; 2 ] (List.rev !order)

let test_promise_all_reports_first_failure () =
  let sched = S.create () in
  ignore
    (S.spawn sched (fun () ->
         let ps : (int, string) P.t list =
           [
             P.resolved sched (P.Normal 1);
             P.resolved sched (P.Unavailable "down");
             P.resolved sched (P.Signal "later");
           ]
         in
         match P.claim (P.all sched ps) with
         | P.Unavailable "down" -> ()
         | _ -> Alcotest.fail "first non-normal outcome should win"));
  run_ok sched

(* ------------------------------------------------------------------ *)
(* Fork *)

let test_fork_normal () =
  let sched = S.create () in
  let got = ref None in
  ignore
    (S.spawn sched (fun () ->
         let p = Core.Fork.fork sched (fun () -> Ok (6 * 7)) in
         got := Some (P.claim p)));
  run_ok sched;
  check Alcotest.bool "normal result" true (!got = Some (P.Normal 42))

let test_fork_runs_in_parallel () =
  let sched = S.create () in
  let finished_at = ref 0.0 in
  ignore
    (S.spawn sched (fun () ->
         let slow () =
           S.sleep sched 5.0;
           Ok ()
         in
         let p1 = Core.Fork.fork sched slow in
         let p2 = Core.Fork.fork sched slow in
         ignore (P.claim p1 : (unit, Core.Sigs.nothing) P.outcome);
         ignore (P.claim p2 : (unit, Core.Sigs.nothing) P.outcome);
         finished_at := S.now sched));
  run_ok sched;
  check (Alcotest.float 1e-9) "parallel, not sequential" 5.0 !finished_at

let test_fork_signal () =
  let sched = S.create () in
  let got = ref None in
  ignore
    (S.spawn sched (fun () ->
         let p = Core.Fork.fork sched (fun () -> Error `Cannot_record) in
         got := Some (P.claim p)));
  run_ok sched;
  check Alcotest.bool "signal propagated" true (!got = Some (P.Signal `Cannot_record))

let test_fork_crash_is_failure () =
  let sched = S.create () in
  let got = ref None in
  ignore
    (S.spawn sched (fun () ->
         let p : (unit, Core.Sigs.nothing) P.t =
           Core.Fork.fork sched (fun () -> failwith "bug in fork body")
         in
         got := Some (P.claim p)));
  run_ok sched;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  match !got with
  | Some (P.Failure reason) ->
      check Alcotest.bool "mentions the bug" true (contains reason "bug in fork body")
  | _ -> Alcotest.fail "expected Failure"

let test_fork_killed_is_failure () =
  let sched = S.create () in
  let got = ref None in
  ignore
    (S.spawn sched (fun () ->
         let group = S.Group.create sched in
         let p : (unit, Core.Sigs.nothing) P.t =
           Core.Fork.fork sched ~group (fun () ->
               S.sleep sched 100.0;
               Ok ())
         in
         S.sleep sched 1.0;
         S.Group.terminate sched group;
         got := Some (P.claim p)));
  run_ok sched;
  check Alcotest.bool "terminated fork resolves its promise" true
    (!got = Some (P.Failure "process terminated"))

(* Promise-tree search: §3.2's example of forked promises in recursive
   data structures. *)
type ptree = T of ((int * ptree * ptree) option, Core.Sigs.nothing) P.t

let test_fork_promise_tree () =
  let sched = S.create () in
  let found = ref [] in
  ignore
    (S.spawn sched (fun () ->
         (* Build a binary search tree whose nodes are promises computed
            by forked insertions. *)
         let rec build lo hi =
           if lo > hi then T (P.resolved sched (P.Normal None))
           else
             T
               (Core.Fork.fork sched (fun () ->
                    let mid = (lo + hi) / 2 in
                    S.sleep sched 0.001;
                    Ok (Some (mid, build lo (mid - 1), build (mid + 1) hi))))
         in
         let tree = build 0 31 in
         let rec search (T p) key =
           match P.claim p with
           | P.Normal None -> false
           | P.Normal (Some (k, l, r)) ->
               if key = k then true else if key < k then search l key else search r key
           | P.Signal _ | P.Unavailable _ | P.Failure _ -> false
         in
         found := List.map (search tree) [ 0; 13; 31; 99 ]));
  run_ok sched;
  check Alcotest.(list bool) "searches" [ true; true; true; false ] !found

(* ------------------------------------------------------------------ *)
(* Coenter *)

let test_coenter_waits_for_all_arms () =
  let sched = S.create () in
  let finished = ref 0 and after = ref (-1) in
  ignore
    (S.spawn sched (fun () ->
         Core.Coenter.coenter sched
           [
             (fun () ->
               S.sleep sched 1.0;
               incr finished);
             (fun () ->
               S.sleep sched 3.0;
               incr finished);
           ];
         after := !finished));
  run_ok sched;
  check Alcotest.int "both arms done before continuing" 2 !after

let test_coenter_exception_terminates_siblings () =
  let sched = S.create () in
  let sibling_done = ref false and caught = ref "" in
  ignore
    (S.spawn sched (fun () ->
         (try
            Core.Coenter.coenter sched
              [
                (fun () ->
                  S.sleep sched 100.0;
                  sibling_done := true);
                (fun () ->
                  S.sleep sched 1.0;
                  failwith "arm failed");
              ]
          with Failure m -> caught := m);
         check Alcotest.bool "sibling was terminated" false !sibling_done));
  run_ok sched;
  check Alcotest.string "exception propagated to parent" "arm failed" !caught

let test_coenter_empty () =
  let sched = S.create () in
  let passed = ref false in
  ignore
    (S.spawn sched (fun () ->
         Core.Coenter.coenter sched [];
         passed := true));
  run_ok sched;
  check Alcotest.bool "empty coenter returns" true !passed

let test_coenter_foreach_dynamic () =
  let sched = S.create () in
  let total = ref 0 in
  ignore
    (S.spawn sched (fun () ->
         Core.Coenter.coenter_foreach sched [ 1; 2; 3; 4 ] (fun i ->
             S.sleep sched (float_of_int i);
             total := !total + i)));
  run_ok sched;
  check Alcotest.int "all items processed" 10 !total

let test_coenter_termination_respects_critical_sections () =
  let sched = S.create () in
  let mutex = Sched.Mutex.create sched in
  let protected_completed = ref false in
  ignore
    (S.spawn sched (fun () ->
         try
           Core.Coenter.coenter sched
             [
               (fun () ->
                 Sched.Mutex.with_lock mutex (fun () ->
                     S.sleep sched 5.0;
                     (* kill arrives at t=1 but we hold the lock *)
                     protected_completed := true));
               (fun () ->
                 S.sleep sched 1.0;
                 failwith "die");
             ]
         with Failure _ -> ()));
  run_ok sched;
  check Alcotest.bool "critical work finished before termination" true !protected_completed;
  check Alcotest.bool "mutex released" false (Sched.Mutex.locked mutex)

(* ------------------------------------------------------------------ *)
(* Sequencer / per-item composition *)

let test_sequencer_orders_turns () =
  let sched = S.create () in
  let order = ref [] in
  ignore
    (S.spawn sched (fun () ->
         let seq = Core.Sequencer.create sched in
         Core.Coenter.coenter_foreach sched [ 3; 0; 2; 1 ] (fun i ->
             (* arrive in scrambled order, pass in index order *)
             S.sleep sched (float_of_int (4 - i) *. 0.01);
             Core.Sequencer.with_turn seq i (fun () -> order := i :: !order))));
  run_ok sched;
  check Alcotest.(list int) "turn order" [ 0; 1; 2; 3 ] (List.rev !order)

let test_sequencer_releases_turn_on_failure () =
  let sched = S.create () in
  let reached = ref false in
  ignore
    (S.spawn sched (fun () ->
         let seq = Core.Sequencer.create sched in
         (try
            Core.Sequencer.with_turn seq 0 (fun () -> failwith "stage failed")
          with Failure _ -> ());
         Core.Sequencer.with_turn seq 1 (fun () -> reached := true)));
  run_ok sched;
  check Alcotest.bool "turn 1 still reachable" true !reached

(* ------------------------------------------------------------------ *)
(* Compose *)

let test_producer_consumer_overlaps () =
  let sched = S.create () in
  let consumed = ref [] in
  let first_consumed_at = ref infinity in
  let producer_done_at = ref 0.0 in
  ignore
    (S.spawn sched (fun () ->
         Core.Compose.producer_consumer sched
           ~produce:(fun emit ->
             for i = 1 to 5 do
               S.sleep sched 1.0;
               emit i
             done;
             producer_done_at := S.now sched)
           ~consume:(fun i ->
             if !first_consumed_at = infinity then first_consumed_at := S.now sched;
             consumed := i :: !consumed)
           ()));
  run_ok sched;
  check Alcotest.(list int) "order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !consumed);
  check Alcotest.bool "consumption started before production finished" true
    (!first_consumed_at < !producer_done_at)

let test_producer_exception_stops_consumer () =
  let sched = S.create () in
  let caught = ref false in
  ignore
    (S.spawn sched (fun () ->
         try
           Core.Compose.producer_consumer sched
             ~produce:(fun emit ->
               emit 1;
               failwith "producer broke")
             ~consume:(fun _ -> ())
             ()
         with Failure _ -> caught := true));
  run_ok sched;
  check Alcotest.bool "composition terminated as a group" true !caught

let test_pipeline3_flows () =
  let sched = S.create () in
  let out = ref [] in
  ignore
    (S.spawn sched (fun () ->
         Core.Compose.pipeline3 sched
           ~stage1:(fun emit -> List.iter emit [ 1; 2; 3 ])
           ~stage2:(fun x emit -> emit (x * 10))
           ~stage3:(fun y -> out := y :: !out)
           ()));
  run_ok sched;
  check Alcotest.(list int) "cascade output" [ 10; 20; 30 ] (List.rev !out)

let test_per_item_keeps_stage_order () =
  let sched = S.create () in
  let stage_log = Array.make 2 [] in
  ignore
    (S.spawn sched (fun () ->
         Core.Compose.per_item sched
           ~items:[ "a"; "b"; "c"; "d" ]
           ~nstages:2
           ~stages:(fun item i seqs ->
             (* Random-ish per-item delays try to scramble the order. *)
             S.sleep sched (float_of_int ((7 * i) mod 5) *. 0.01);
             Core.Sequencer.with_turn seqs.(0) i (fun () ->
                 stage_log.(0) <- item :: stage_log.(0));
             S.sleep sched (float_of_int ((3 * i) mod 4) *. 0.01);
             Core.Sequencer.with_turn seqs.(1) i (fun () ->
                 stage_log.(1) <- item :: stage_log.(1)))));
  run_ok sched;
  check Alcotest.(list string) "stage 0 in item order" [ "a"; "b"; "c"; "d" ]
    (List.rev stage_log.(0));
  check Alcotest.(list string) "stage 1 in item order" [ "a"; "b"; "c"; "d" ]
    (List.rev stage_log.(1))

(* ------------------------------------------------------------------ *)
(* Compose extras *)

let test_producer_consumer_bounded_backpressure () =
  let sched = S.create () in
  let max_gap = ref 0 in
  let produced = ref 0 and consumed = ref 0 in
  ignore
    (S.spawn sched (fun () ->
         Core.Compose.producer_consumer sched ~capacity:3
           ~produce:(fun emit ->
             for i = 1 to 20 do
               emit i;
               incr produced;
               let gap = !produced - !consumed in
               if gap > !max_gap then max_gap := gap
             done)
           ~consume:(fun _ ->
             S.sleep sched 1.0;
             incr consumed)
           ()));
  run_ok sched;
  check Alcotest.int "all consumed" 20 !consumed;
  (* capacity 3 plus the element in the consumer's hands *)
  check Alcotest.bool "bounded gap" true (!max_gap <= 4)

let test_consumer_exception_stops_producer () =
  let sched = S.create () in
  let produced = ref 0 and caught = ref false in
  ignore
    (S.spawn sched (fun () ->
         try
           Core.Compose.producer_consumer sched ~capacity:2
             ~produce:(fun emit ->
               for i = 1 to 1000 do
                 emit i;
                 incr produced
               done)
             ~consume:(fun i -> if i = 3 then failwith "consumer died")
             ()
         with Failure _ -> caught := true));
  run_ok sched;
  check Alcotest.bool "propagated" true !caught;
  check Alcotest.bool "producer was terminated early" true (!produced < 1000)

let suite =
  [
    ( "promise",
      [
        Alcotest.test_case "blocked then ready" `Quick test_promise_blocked_then_ready;
        Alcotest.test_case "claim blocks until ready" `Quick test_promise_claim_blocks_until_ready;
        Alcotest.test_case "multi-claim same outcome" `Quick test_promise_multi_claim_same_outcome;
        Alcotest.test_case "resolve twice rejected" `Quick test_promise_resolve_twice_rejected;
        Alcotest.test_case "claim_normal dispatch" `Quick test_promise_claim_normal_dispatch;
        Alcotest.test_case "claim_timeout degrades to Unavailable" `Quick
          test_promise_claim_timeout;
        Alcotest.test_case "claim_timeout racing claimants vs late resolve" `Quick
          test_promise_claim_timeout_racing_claimants;
        Alcotest.test_case "claim_deadline in the past" `Quick
          test_promise_claim_deadline_expired;
        Alcotest.test_case "map/all/both" `Quick test_promise_map_all_both;
        Alcotest.test_case "on_ready after resolve" `Quick test_promise_on_ready_after_resolve;
        Alcotest.test_case "hooks in registration order" `Quick
          test_promise_hooks_fire_in_registration_order;
        Alcotest.test_case "all reports first failure" `Quick
          test_promise_all_reports_first_failure;
      ] );
    ( "fork",
      [
        Alcotest.test_case "normal result" `Quick test_fork_normal;
        Alcotest.test_case "runs in parallel" `Quick test_fork_runs_in_parallel;
        Alcotest.test_case "signal" `Quick test_fork_signal;
        Alcotest.test_case "crash is failure" `Quick test_fork_crash_is_failure;
        Alcotest.test_case "killed is failure" `Quick test_fork_killed_is_failure;
        Alcotest.test_case "promise tree (§3.2)" `Quick test_fork_promise_tree;
      ] );
    ( "coenter",
      [
        Alcotest.test_case "waits for all arms" `Quick test_coenter_waits_for_all_arms;
        Alcotest.test_case "exception terminates siblings" `Quick
          test_coenter_exception_terminates_siblings;
        Alcotest.test_case "empty" `Quick test_coenter_empty;
        Alcotest.test_case "foreach (dynamic arms)" `Quick test_coenter_foreach_dynamic;
        Alcotest.test_case "respects critical sections" `Quick
          test_coenter_termination_respects_critical_sections;
      ] );
    ( "sequencer",
      [
        Alcotest.test_case "orders turns" `Quick test_sequencer_orders_turns;
        Alcotest.test_case "releases turn on failure" `Quick
          test_sequencer_releases_turn_on_failure;
      ] );
    ( "compose",
      [
        Alcotest.test_case "producer/consumer overlaps" `Quick test_producer_consumer_overlaps;
        Alcotest.test_case "producer exception stops consumer" `Quick
          test_producer_exception_stops_consumer;
        Alcotest.test_case "three-stage cascade" `Quick test_pipeline3_flows;
        Alcotest.test_case "per-item keeps stage order" `Quick test_per_item_keeps_stage_order;
        Alcotest.test_case "bounded queue back-pressure" `Quick
          test_producer_consumer_bounded_backpressure;
        Alcotest.test_case "consumer exception stops producer" `Quick
          test_consumer_exception_stops_producer;
      ] );
  ]

let () = Alcotest.run "core" suite
