(* Tests for the call-stream substrate: reliable channels (chanhub),
   wire encoding, stream sender end, target receiver end. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module T = Cstream.Target
module W = Cstream.Wire
module GC = Cstream.Group_config

let check = Alcotest.check

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  node_a : Net.node;
  node_b : Net.node;
  hub_a : CH.hub;
  hub_b : CH.hub;
}

let make_world ?(cfg = Net.default_config) ?(seed = 42) () =
  let sched = S.create ~seed () in
  let net = Net.create sched cfg in
  let node_a = Net.add_node net ~name:"a" in
  let node_b = Net.add_node net ~name:"b" in
  let hub_a = CH.create_hub ~net:(net, node_a) () in
  let hub_b = CH.create_hub ~net:(net, node_b) () in
  { sched; net; node_a; node_b; hub_a; hub_b }

let run_ok w =
  match S.run w.sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

let ints_of_values vs =
  List.map (function Xdr.Int i -> i | v -> Alcotest.failf "not an int: %a" Xdr.pp_value v) vs

(* ------------------------------------------------------------------ *)
(* Wire encoding *)

let test_wire_call_roundtrip () =
  let item =
    W.call_item ~seq:7 ~cid:42 ~trace:None ~port:"record_grade" ~kind:W.Call ~args:(Xdr.Int 5) ()
  in
  match W.parse_call item with
  | Ok (seq, cid, port, kind, args) ->
      check Alcotest.int "seq" 7 seq;
      check Alcotest.int "cid" 42 cid;
      check Alcotest.string "port" "record_grade" port;
      check Alcotest.bool "kind" true (kind = W.Call);
      check Alcotest.bool "args" true (args = Xdr.Int 5)
  | Error e -> Alcotest.fail e

let test_wire_send_kind_roundtrip () =
  let item = W.call_item ~seq:0 ~cid:0 ~trace:None ~port:"p" ~kind:W.Send ~args:Xdr.Unit () in
  match W.parse_call item with
  | Ok (_, _, _, kind, _) -> check Alcotest.bool "send kind" true (kind = W.Send)
  | Error e -> Alcotest.fail e

let test_wire_reply_roundtrips () =
  let cases =
    [
      W.W_normal (Xdr.Real 3.25);
      W.W_signal ("no_such_user", Xdr.Str "bob");
      W.W_unavailable "cannot communicate";
      W.W_failure "handler does not exist";
    ]
  in
  List.iteri
    (fun i outcome ->
      match W.parse_reply (W.reply_item ~seq:i ~trace:None outcome) with
      | Ok (seq, got) ->
          check Alcotest.int "seq" i seq;
          check Alcotest.bool "outcome" true (got = outcome)
      | Error e -> Alcotest.fail e)
    cases

let test_wire_send_ok_parses_as_normal_unit () =
  match W.parse_reply (W.send_ok_item ~seq:3 ~trace:None) with
  | Ok (3, W.W_normal Xdr.Unit) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

let test_wire_send_ok_is_small () =
  let full =
    Xdr.wire_size (W.reply_item ~seq:0 ~trace:None (W.W_normal (Xdr.Str (String.make 100 'x'))))
  in
  let compact = Xdr.wire_size (W.send_ok_item ~seq:0 ~trace:None) in
  check Alcotest.bool "compact reply much smaller" true (compact * 5 < full)

let test_wire_malformed_rejected () =
  (match W.parse_call (Xdr.Int 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed garbage call");
  match W.parse_reply (Xdr.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed garbage reply"

(* ------------------------------------------------------------------ *)
(* Chanhub *)

let collect_channel w ~cfg ~n =
  (* Send [n] integers a->b on one channel; return (received ints in
     order, world) after the run completes. *)
  let received = ref [] in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun items -> received := !received @ ints_of_values items));
  let out = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:"" cfg in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to n do
           ignore (CH.send out (Xdr.Int i) : (unit, string) result)
         done;
         CH.flush_out out));
  run_ok w;
  !received

let expected_ints n = List.init n (fun i -> i + 1)

let test_chan_in_order_delivery () =
  let w = make_world () in
  let got = collect_channel w ~cfg:CH.default_config ~n:20 in
  check Alcotest.(list int) "all items in order" (expected_ints 20) got

let test_chan_batching_message_count () =
  let w = make_world () in
  let cfg = { CH.default_config with CH.max_batch = 5; flush_interval = infinity } in
  let got = collect_channel w ~cfg ~n:20 in
  check Alcotest.(list int) "delivered" (expected_ints 20) got;
  (* 20 items at batch 5 = 4 data messages; each acked once. *)
  let sent = Sim.Stats.count (Sim.Stats.counter (Net.stats w.net) "msgs_sent") in
  check Alcotest.int "4 data + 4 acks" 8 sent

let test_chan_no_batching_message_count () =
  let w = make_world () in
  let got = collect_channel w ~cfg:CH.rpc_config ~n:20 in
  check Alcotest.(list int) "delivered" (expected_ints 20) got;
  let sent = Sim.Stats.count (Sim.Stats.counter (Net.stats w.net) "msgs_sent") in
  check Alcotest.int "20 data + 20 acks" 40 sent

let test_chan_flush_interval_fires () =
  let w = make_world () in
  let cfg = { CH.default_config with CH.max_batch = 1000; flush_interval = 5e-3 } in
  let received_at = ref (-1.0) in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun _ -> received_at := S.now w.sched));
  let out = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:"" cfg in
  ignore
    (S.spawn w.sched (fun () -> ignore (CH.send out (Xdr.Int 1) : (unit, string) result)));
  run_ok w;
  check Alcotest.bool "delivered after the interval" true
    (!received_at >= 5e-3 && !received_at < 20e-3)

let test_chan_reliable_under_loss () =
  let w = make_world ~cfg:(Net.lossy ~loss:0.25 Net.default_config) () in
  let got = collect_channel w ~cfg:CH.default_config ~n:50 in
  check Alcotest.(list int) "exactly once, in order, despite loss" (expected_ints 50) got

let test_chan_reliable_under_duplication () =
  let w = make_world ~cfg:(Net.lossy ~loss:0.1 ~dup:0.3 Net.default_config) () in
  let got = collect_channel w ~cfg:CH.default_config ~n:50 in
  check Alcotest.(list int) "duplicates suppressed" (expected_ints 50) got

let prop_chan_reliable_any_seed =
  QCheck.Test.make ~name:"channel is exactly-once in-order for any seed/loss" ~count:40
    QCheck.(pair small_int (int_range 0 40))
    (fun (seed, loss_pct) ->
      let cfg = Net.lossy ~loss:(float_of_int loss_pct /. 100.) ~dup:0.1 Net.default_config in
      let w = make_world ~cfg ~seed () in
      let got = collect_channel w ~cfg:CH.default_config ~n:30 in
      got = expected_ints 30)

let prop_chan_random_flush_interleavings =
  (* Random explicit flushes between sends, under loss and duplication:
     still exactly-once, in order. *)
  QCheck.Test.make ~name:"random send/flush interleavings stay exactly-once in-order"
    ~count:30
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 40) bool))
    (fun (seed, plan) ->
      let cfg = Net.lossy ~loss:0.15 ~dup:0.1 Net.default_config in
      let w = make_world ~cfg ~seed () in
      let received = ref [] in
      CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
          CH.set_deliver in_chan (fun items -> received := !received @ ints_of_values items));
      let out =
        CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:""
          { CH.default_config with CH.max_batch = 4 }
      in
      ignore
        (S.spawn w.sched (fun () ->
             List.iteri
               (fun i flush_now ->
                 ignore (CH.send out (Xdr.Int (i + 1)) : (unit, string) result);
                 if flush_now then CH.flush_out out)
               plan;
             CH.flush_out out));
      (match S.run w.sched with S.Completed -> () | _ -> failwith "bad run");
      !received = List.init (List.length plan) (fun i -> i + 1))

let test_chan_break_on_unreachable_peer () =
  let w = make_world () in
  Net.crash w.net w.node_b;
  let broke = ref None in
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:"" CH.default_config
  in
  CH.on_out_break out (fun reason -> broke := Some reason);
  ignore
    (S.spawn w.sched (fun () ->
         ignore (CH.send out (Xdr.Int 1) : (unit, string) result);
         CH.flush_out out));
  run_ok w;
  (match !broke with
  | Some reason -> check Alcotest.bool "mentions retransmit" true
      (String.length reason > 0)
  | None -> Alcotest.fail "expected break");
  check Alcotest.bool "marked broken" true (CH.out_broken out <> None)

let test_chan_unknown_label_resets () =
  let w = make_world () in
  let broke = ref None in
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"nobody-home" ~meta:""
      CH.default_config
  in
  CH.on_out_break out (fun reason -> broke := Some reason);
  ignore
    (S.spawn w.sched (fun () ->
         ignore (CH.send out (Xdr.Int 1) : (unit, string) result);
         CH.flush_out out));
  run_ok w;
  check Alcotest.(option string) "reset reason" (Some "no such port group") !broke

let test_chan_receiver_break () =
  let w = make_world () in
  let broke = ref None in
  let seen = ref 0 in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun items ->
          seen := !seen + List.length items;
          if !seen >= 3 then CH.break_in in_chan ~reason:"receiver had enough"));
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:""
      { CH.default_config with CH.max_batch = 1 }
  in
  CH.on_out_break out (fun reason -> broke := Some reason);
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 3 do
           ignore (CH.send out (Xdr.Int i) : (unit, string) result)
         done));
  run_ok w;
  check Alcotest.(option string) "sender learned the reason" (Some "receiver had enough") !broke

let test_chan_send_after_break_errors () =
  let w = make_world () in
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"x" ~meta:"" CH.default_config
  in
  CH.break_out out ~reason:"bye";
  (match CH.send out (Xdr.Int 1) with
  | Error reason -> check Alcotest.string "break reason reported" "bye" reason
  | Ok () -> Alcotest.fail "send on broken channel should return Error");
  run_ok w

(* ------------------------------------------------------------------ *)
(* Stream + Target *)

(* A tiny arithmetic service: port "double" doubles ints after
   [service] seconds; port "fail" signals; port "boom" replies failure. *)
let install_service ?(service = 0.0) ?config w =
  let log = ref [] in
  let dispatch conn ~seq:_ ~port ~kind:_ ~args ~reply =
    ignore conn;
    ignore
      (S.spawn w.sched (fun () ->
           if service > 0.0 then S.sleep w.sched service;
           log := (port, args) :: !log;
           match (port, args) with
           | "double", Xdr.Int n -> reply (W.W_normal (Xdr.Int (2 * n)))
           | "fail", _ -> reply (W.W_signal ("e1", Xdr.Str "declared"))
           | "boom", _ -> reply (W.W_failure "handler blew up")
           | _ -> reply (W.W_failure ("no such port: " ^ port))))
  in
  let target = T.create w.hub_b ~gid:"svc" ?config dispatch in
  (target, log)

let test_stream_call_reply () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         (match
            SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 21)
              ~on_reply:(fun o -> got := Some o)
          with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
         SE.flush stream));
  run_ok w;
  match !got with
  | Some (W.W_normal (Xdr.Int 42)) -> ()
  | Some o -> Alcotest.failf "unexpected outcome %a" W.pp_routcome o
  | None -> Alcotest.fail "no reply"

let test_stream_replies_in_call_order () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let order = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 10 do
           match
             SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
               ~on_reply:(fun _ -> order := i :: !order)
           with
           | Ok () -> ()
           | Error e -> Alcotest.fail e
         done;
         SE.flush stream));
  run_ok w;
  check Alcotest.(list int) "replies in call order" (expected_ints 10) (List.rev !order)

let test_target_executes_in_call_order () =
  let w = make_world () in
  let _target, log = install_service ~service:1e-3 w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 5 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun _ -> ())
               : (unit, string) result)
         done;
         SE.flush stream));
  run_ok w;
  let executed = List.rev_map (fun (_, args) -> args) !log in
  check Alcotest.bool "handler ran in call order" true
    (executed = List.map (fun i -> Xdr.Int i) (expected_ints 5))

let test_streams_processed_concurrently () =
  (* Two agents, same group: their calls overlap; total time is about
     one service time, not two (§2.1's mailer example). *)
  let w = make_world () in
  let _target, _ = install_service ~service:10e-3 w in
  let finished = ref [] in
  let make_client name =
    let stream = SE.create w.hub_a ~agent:name ~dst:(Net.address w.node_b) ~gid:"svc" () in
    ignore
      (S.spawn w.sched (fun () ->
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 1)
                ~on_reply:(fun _ -> ())
               : (unit, string) result);
           SE.flush stream;
           match SE.synch stream with
           | Ok () -> finished := (name, S.now w.sched) :: !finished
           | Error _ -> Alcotest.fail "synch failed"))
  in
  make_client "c1";
  make_client "c2";
  run_ok w;
  check Alcotest.int "both finished" 2 (List.length !finished);
  List.iter
    (fun (name, at) ->
      if at > 18e-3 then Alcotest.failf "%s finished too late: %.4f (serialised?)" name at)
    !finished

let test_stream_signal_propagates () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         ignore
           (SE.call stream ~port:"fail" ~kind:W.Call ~args:Xdr.Unit
              ~on_reply:(fun o -> got := Some o)
             : (unit, string) result);
         SE.flush stream));
  run_ok w;
  match !got with
  | Some (W.W_signal ("e1", Xdr.Str "declared")) -> ()
  | Some o -> Alcotest.failf "unexpected %a" W.pp_routcome o
  | None -> Alcotest.fail "no reply"

let test_send_kind_gets_compact_ok () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         ignore
           (SE.call stream ~port:"double" ~kind:W.Send ~args:(Xdr.Int 21)
              ~on_reply:(fun o -> got := Some o)
             : (unit, string) result);
         SE.flush stream));
  run_ok w;
  match !got with
  | Some (W.W_normal Xdr.Unit) -> () (* result value dropped for sends *)
  | Some o -> Alcotest.failf "unexpected %a" W.pp_routcome o
  | None -> Alcotest.fail "no reply"

let test_synch_ok_and_exception_reply () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let results = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 1) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         results := ("first", SE.synch stream = Ok ()) :: !results;
         ignore
           (SE.call stream ~port:"fail" ~kind:W.Call ~args:Xdr.Unit ~on_reply:(fun _ -> ())
             : (unit, string) result);
         results := ("second", SE.synch stream = Error `Exception_reply) :: !results;
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 2) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         (* the exception flag was consumed by the previous synch *)
         results := ("third", SE.synch stream = Ok ()) :: !results));
  run_ok w;
  check
    Alcotest.(list (pair string bool))
    "synch outcomes"
    [ ("first", true); ("second", true); ("third", true) ]
    (List.rev !results)

let test_synch_waits_for_completion () =
  let w = make_world () in
  let _target, _ = install_service ~service:5e-3 w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let done_at = ref 0.0 in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 4 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun _ -> ())
               : (unit, string) result)
         done;
         (match SE.synch stream with Ok () -> () | Error _ -> Alcotest.fail "synch");
         done_at := S.now w.sched;
         check Alcotest.int "no outstanding after synch" 0 (SE.outstanding stream)));
  run_ok w;
  check Alcotest.bool "waited for 4 sequential services" true (!done_at >= 20e-3)

let test_crash_breaks_stream_unavailable () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let outcomes = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         Net.crash w.net w.node_b;
         for i = 1 to 3 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun o -> outcomes := o :: !outcomes)
               : (unit, string) result)
         done;
         SE.flush stream));
  run_ok w;
  check Alcotest.int "all three completed" 3 (List.length !outcomes);
  List.iter
    (fun o ->
      match o with
      | W.W_unavailable _ -> ()
      | o -> Alcotest.failf "expected unavailable, got %a" W.pp_routcome o)
    !outcomes;
  check Alcotest.bool "stream broken" true (SE.broken stream <> None)

let test_call_on_broken_stream_fails_immediately () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  ignore
    (S.spawn w.sched (fun () ->
         Net.crash w.net w.node_b;
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 1) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         SE.flush stream));
  run_ok w;
  (* Now broken; a further call must fail without creating anything. *)
  match
    SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 2) ~on_reply:(fun _ -> ())
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "call on broken stream should fail immediately"

let test_restart_reincarnates () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         (* Break it... *)
         Net.crash w.net w.node_b;
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 1) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         SE.flush stream;
         (* wait for the break *)
         while SE.broken stream = None do
           S.sleep w.sched 50e-3
         done;
         (* ...then revive the node and restart the stream. *)
         Net.recover w.net w.node_b;
         SE.restart stream;
         (match
            SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 21)
              ~on_reply:(fun o -> got := Some o)
          with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
         SE.flush stream));
  run_ok w;
  match !got with
  | Some (W.W_normal (Xdr.Int 42)) -> ()
  | Some o -> Alcotest.failf "unexpected %a" W.pp_routcome o
  | None -> Alcotest.fail "no reply after restart"

let test_receiver_initiated_break () =
  let w = make_world () in
  (* A service that breaks the connection when asked. *)
  let dispatch conn ~seq:_ ~port ~kind:_ ~args:_ ~reply =
    match port with
    | "work" -> reply (W.W_normal Xdr.Unit)
    | "poison" ->
        reply (W.W_failure "could not decode");
        T.break_conn conn ~reason:"decode failure"
    | _ -> reply (W.W_failure "no such port")
  in
  ignore (T.create w.hub_b ~gid:"svc" dispatch : T.t);
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let outcomes = ref [] in
  let record tag o = outcomes := (tag, o) :: !outcomes in
  ignore
    (S.spawn w.sched (fun () ->
         ignore
           (SE.call stream ~port:"work" ~kind:W.Call ~args:Xdr.Unit ~on_reply:(record "ok1")
             : (unit, string) result);
         ignore
           (SE.call stream ~port:"poison" ~kind:W.Call ~args:Xdr.Unit ~on_reply:(record "bad")
             : (unit, string) result);
         ignore
           (SE.call stream ~port:"work" ~kind:W.Call ~args:Xdr.Unit ~on_reply:(record "after")
             : (unit, string) result);
         SE.flush stream));
  run_ok w;
  let find tag = List.assoc tag !outcomes in
  (match find "ok1" with
  | W.W_normal _ -> ()
  | o -> Alcotest.failf "first call should succeed, got %a" W.pp_routcome o);
  (match find "bad" with
  | W.W_failure reason -> check Alcotest.string "failure reason" "could not decode" reason
  | o -> Alcotest.failf "poison should fail, got %a" W.pp_routcome o);
  (match find "after" with
  | W.W_unavailable _ -> ()
  | o -> Alcotest.failf "call after break should be unavailable, got %a" W.pp_routcome o);
  check Alcotest.bool "stream broken at sender" true (SE.broken stream <> None)

let test_stream_reliable_under_loss () =
  let w = make_world ~cfg:(Net.lossy ~loss:0.2 Net.default_config) () in
  let _target, _ = install_service w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let replies = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 25 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun o -> replies := o :: !replies)
               : (unit, string) result)
         done;
         match SE.synch stream with
         | Ok () -> ()
         | Error `Exception_reply -> Alcotest.fail "no exceptions expected"
         | Error (`Broken r) -> Alcotest.failf "stream broke: %s" r));
  run_ok w;
  let doubled =
    List.rev_map (function W.W_normal (Xdr.Int n) -> n | _ -> -1) !replies
  in
  check Alcotest.(list int) "all replies, in order, exactly once"
    (List.map (fun i -> 2 * i) (expected_ints 25))
    doubled

(* ------------------------------------------------------------------ *)
(* Partitions and restart *)

let fast_cfg = { CH.default_config with CH.retransmit_timeout = 5e-3; max_retries = 3 }

let test_partition_breaks_then_restart_works () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream =
    SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc"
      ~config:fast_cfg ()
  in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         (* first call works *)
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 1) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         SE.flush stream;
         S.sleep w.sched 10e-3;
         (* partition: next call can never be delivered *)
         Net.partition w.net (Net.address w.node_a) (Net.address w.node_b);
         ignore
           (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 2) ~on_reply:(fun _ -> ())
             : (unit, string) result);
         SE.flush stream;
         while SE.broken stream = None do
           S.sleep w.sched 5e-3
         done;
         (* heal and reincarnate *)
         Net.heal w.net (Net.address w.node_a) (Net.address w.node_b);
         SE.restart stream;
         match
           SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int 21)
             ~on_reply:(fun o -> got := Some o)
         with
         | Ok () -> SE.flush stream
         | Error e -> Alcotest.fail e));
  run_ok w;
  match !got with
  | Some (W.W_normal (Xdr.Int 42)) -> ()
  | Some o -> Alcotest.failf "unexpected %a" W.pp_routcome o
  | None -> Alcotest.fail "no reply after heal+restart"

(* ------------------------------------------------------------------ *)
(* Supervision support: preserve-on-break, resubmission, dedup *)

let test_break_during_synch_observes_broken () =
  let w = make_world () in
  let _target, _ = install_service w in
  let stream =
    SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc"
      ~config:fast_cfg ()
  in
  let result = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         Net.crash w.net w.node_b;
         for i = 1 to 3 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun _ -> ())
               : (unit, string) result)
         done;
         (* parks in synch; the retransmit-exhaustion break must wake it *)
         result := Some (SE.synch stream)));
  run_ok w;
  match !result with
  | Some (Error (`Broken _)) -> ()
  | Some (Ok ()) -> Alcotest.fail "synch should observe the break"
  | Some (Error `Exception_reply) -> Alcotest.fail "expected `Broken, got `Exception_reply"
  | None -> Alcotest.fail "synch never returned"

let test_restart_inflight_resolves_each_exactly_once () =
  let w = make_world () in
  (* Slow sequential service: all three calls are still in flight when
     the sender restarts. *)
  let _target, _ = install_service ~service:50e-3 w in
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let counts = Array.make 3 0 in
  let outcomes = Array.make 3 None in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 0 to 2 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun o ->
                  counts.(i) <- counts.(i) + 1;
                  outcomes.(i) <- Some o)
               : (unit, string) result)
         done;
         SE.flush stream;
         S.sleep w.sched 10e-3;
         check Alcotest.int "all three in flight" 3 (SE.outstanding stream);
         SE.restart stream;
         check Alcotest.int "none outstanding after restart" 0 (SE.outstanding stream)));
  (* Let the run drain: the orphaned handlers still reply at 50/100/150
     ms on the dead incarnation; those stale replies must not re-resolve
     anything. *)
  run_ok w;
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "call %d resolved exactly once" i) 1 c)
    counts;
  Array.iter
    (function
      | Some (W.W_unavailable _) -> ()
      | Some o -> Alcotest.failf "expected unavailable, got %a" W.pp_routcome o
      | None -> Alcotest.fail "call never resolved")
    outcomes

let test_resubmit_preserves_and_replays_calls () =
  let w = make_world () in
  let _target, log = install_service w in
  let stream =
    SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc"
      ~config:fast_cfg ()
  in
  SE.set_preserve_on_break stream true;
  let counts = Array.make 4 0 in
  let normals = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         (* Crash before anything is delivered: every call survives the
            break as pending and is replayed on the next incarnation. *)
         Net.crash w.net w.node_b;
         for i = 0 to 3 do
           ignore
             (SE.call stream ~port:"double" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun o ->
                  counts.(i) <- counts.(i) + 1;
                  match o with W.W_normal _ -> incr normals | _ -> ())
               : (unit, string) result)
         done;
         SE.flush stream;
         while SE.broken stream = None do
           S.sleep w.sched 5e-3
         done;
         check Alcotest.int "calls preserved across break" 4 (SE.outstanding stream);
         Net.recover w.net w.node_b;
         check Alcotest.int "all four resubmitted" 4 (SE.restart_resubmit stream);
         check Alcotest.int "fresh incarnation" 1 (SE.incarnation stream);
         match SE.synch stream with
         | Ok () -> ()
         | Error `Exception_reply -> Alcotest.fail "unexpected exception reply"
         | Error (`Broken r) -> Alcotest.failf "stream broke again: %s" r));
  run_ok w;
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "call %d resolved exactly once" i) 1 c)
    counts;
  check Alcotest.int "all four terminated normally" 4 !normals;
  check Alcotest.int "each call executed exactly once" 4 (List.length !log)

let test_resubmit_dedups_already_executed_calls () =
  let w = make_world () in
  (* Count executions per argument; ~dedup:true must keep every count
     at one even though calls 0-2 are submitted twice (their replies
     were lost to the partition). *)
  let applied : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let dispatch _conn ~seq:_ ~port:_ ~kind:_ ~args ~reply =
    ignore
      (S.spawn w.sched (fun () ->
           (match args with
           | Xdr.Int i ->
               Hashtbl.replace applied i
                 (1 + Option.value ~default:0 (Hashtbl.find_opt applied i))
           | _ -> ());
           reply (W.W_normal args)))
  in
  ignore (T.create w.hub_b ~gid:"svc" ~config:GC.(default |> with_dedup) dispatch : T.t);
  let stream =
    SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc"
      ~config:fast_cfg ()
  in
  SE.set_preserve_on_break stream true;
  let counts = Array.make 4 0 in
  let normals = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 0 to 2 do
           ignore
             (SE.call stream ~port:"echo" ~kind:W.Call ~args:(Xdr.Int i)
                ~on_reply:(fun o ->
                  counts.(i) <- counts.(i) + 1;
                  match o with W.W_normal _ -> incr normals | _ -> ())
               : (unit, string) result)
         done;
         SE.flush stream;
         (* 3 ms: the calls have been delivered, executed and acked, but
            their buffered replies have not been transmitted yet. *)
         S.sleep w.sched 3e-3;
         Net.partition w.net (Net.address w.node_a) (Net.address w.node_b);
         (* A fourth call cannot be delivered: its retransmissions are
            what detect the partition and break the stream. *)
         ignore
           (SE.call stream ~port:"echo" ~kind:W.Call ~args:(Xdr.Int 3)
              ~on_reply:(fun o ->
                counts.(3) <- counts.(3) + 1;
                match o with W.W_normal _ -> incr normals | _ -> ())
             : (unit, string) result);
         SE.flush stream;
         while SE.broken stream = None do
           S.sleep w.sched 5e-3
         done;
         check Alcotest.int "all four preserved" 4 (SE.outstanding stream);
         Net.heal w.net (Net.address w.node_a) (Net.address w.node_b);
         check Alcotest.int "all four resubmitted" 4 (SE.restart_resubmit stream);
         match SE.synch stream with
         | Ok () -> ()
         | Error `Exception_reply -> Alcotest.fail "unexpected exception reply"
         | Error (`Broken r) -> Alcotest.failf "stream broke again: %s" r));
  run_ok w;
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "call %d resolved exactly once" i) 1 c)
    counts;
  check Alcotest.int "all four terminated normally" 4 !normals;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "arg %d executed exactly once" i)
      1
      (Option.value ~default:0 (Hashtbl.find_opt applied i))
  done;
  let replays =
    Sim.Stats.count (Sim.Stats.counter (S.stats w.sched) "target_dedup_replays")
  in
  check Alcotest.bool "dedup cache replayed the executed calls" true (replays >= 3)

let test_two_channels_do_not_interfere () =
  let w = make_world () in
  let got1 = ref [] and got2 = ref [] in
  CH.on_connect w.hub_b ~label:"one" (fun in_chan ->
      CH.set_deliver in_chan (fun items -> got1 := !got1 @ ints_of_values items));
  CH.on_connect w.hub_b ~label:"two" (fun in_chan ->
      CH.set_deliver in_chan (fun items -> got2 := !got2 @ ints_of_values items));
  let c1 = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"one" ~meta:"" CH.rpc_config in
  let c2 = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"two" ~meta:"" CH.rpc_config in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to 5 do
           ignore (CH.send c1 (Xdr.Int i) : (unit, string) result);
           ignore (CH.send c2 (Xdr.Int (100 + i)) : (unit, string) result)
         done));
  run_ok w;
  check Alcotest.(list int) "channel one" [ 1; 2; 3; 4; 5 ] !got1;
  check Alcotest.(list int) "channel two" [ 101; 102; 103; 104; 105 ] !got2

(* ------------------------------------------------------------------ *)
(* Unordered execution (the §2.1 override) *)

let test_unordered_target_overlaps_but_replies_in_order () =
  let w = make_world () in
  (* first call is slow, later ones fast: with ordered execution the
     total is the sum, with the override the fast ones run during the
     slow one. *)
  let started = ref [] in
  let dispatch _conn ~seq ~port:_ ~kind:_ ~args:_ ~reply =
    started := seq :: !started;
    ignore
      (S.spawn w.sched (fun () ->
           S.sleep w.sched (if seq = 0 then 10e-3 else 5e-3);
           reply (W.W_normal (Xdr.Int seq))))
  in
  ignore (T.create w.hub_b ~gid:"svc" ~config:GC.(default |> with_ordered false) dispatch : T.t);
  let stream = SE.create w.hub_a ~agent:"client" ~dst:(Net.address w.node_b) ~gid:"svc" () in
  let reply_order = ref [] in
  let done_at = ref 0.0 in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 0 to 4 do
           ignore
             (SE.call stream ~port:"p" ~kind:W.Call ~args:(Xdr.Int i) ~on_reply:(fun o ->
                  match o with
                  | W.W_normal (Xdr.Int v) ->
                      reply_order := v :: !reply_order;
                      done_at := S.now w.sched
                  | _ -> ())
               : (unit, string) result)
         done;
         SE.flush stream));
  run_ok w;
  check Alcotest.(list int) "replies released in call order" [ 0; 1; 2; 3; 4 ]
    (List.rev !reply_order);
  (* overlapped: total ~ slowest single call (10 ms) plus transport,
     not the 30 ms sum of sequential execution *)
  check Alcotest.bool "calls overlapped" true (!done_at < 20e-3)

let suite =
  [
    ( "wire",
      [
        Alcotest.test_case "call roundtrip" `Quick test_wire_call_roundtrip;
        Alcotest.test_case "send kind roundtrip" `Quick test_wire_send_kind_roundtrip;
        Alcotest.test_case "reply roundtrips" `Quick test_wire_reply_roundtrips;
        Alcotest.test_case "send_ok parses as normal unit" `Quick
          test_wire_send_ok_parses_as_normal_unit;
        Alcotest.test_case "send_ok is compact" `Quick test_wire_send_ok_is_small;
        Alcotest.test_case "malformed rejected" `Quick test_wire_malformed_rejected;
      ] );
    ( "chanhub",
      [
        Alcotest.test_case "in-order delivery" `Quick test_chan_in_order_delivery;
        Alcotest.test_case "batching reduces messages" `Quick test_chan_batching_message_count;
        Alcotest.test_case "no batching: one message per item" `Quick
          test_chan_no_batching_message_count;
        Alcotest.test_case "flush interval fires" `Quick test_chan_flush_interval_fires;
        Alcotest.test_case "reliable under loss" `Quick test_chan_reliable_under_loss;
        Alcotest.test_case "reliable under duplication" `Quick test_chan_reliable_under_duplication;
        Alcotest.test_case "break on unreachable peer" `Quick test_chan_break_on_unreachable_peer;
        Alcotest.test_case "unknown label resets" `Quick test_chan_unknown_label_resets;
        Alcotest.test_case "receiver break" `Quick test_chan_receiver_break;
        Alcotest.test_case "send after break returns Error" `Quick
          test_chan_send_after_break_errors;
        QCheck_alcotest.to_alcotest prop_chan_reliable_any_seed;
        QCheck_alcotest.to_alcotest prop_chan_random_flush_interleavings;
      ] );
    ( "stream",
      [
        Alcotest.test_case "call/reply" `Quick test_stream_call_reply;
        Alcotest.test_case "replies in call order" `Quick test_stream_replies_in_call_order;
        Alcotest.test_case "target executes in call order" `Quick
          test_target_executes_in_call_order;
        Alcotest.test_case "streams processed concurrently" `Quick
          test_streams_processed_concurrently;
        Alcotest.test_case "signal propagates" `Quick test_stream_signal_propagates;
        Alcotest.test_case "send gets compact ok" `Quick test_send_kind_gets_compact_ok;
        Alcotest.test_case "synch ok / exception_reply" `Quick test_synch_ok_and_exception_reply;
        Alcotest.test_case "synch waits for completion" `Quick test_synch_waits_for_completion;
        Alcotest.test_case "crash breaks stream" `Quick test_crash_breaks_stream_unavailable;
        Alcotest.test_case "call on broken stream fails fast" `Quick
          test_call_on_broken_stream_fails_immediately;
        Alcotest.test_case "restart reincarnates" `Quick test_restart_reincarnates;
        Alcotest.test_case "receiver-initiated break" `Quick test_receiver_initiated_break;
        Alcotest.test_case "stream reliable under loss" `Quick test_stream_reliable_under_loss;
        Alcotest.test_case "partition breaks; heal+restart recovers" `Quick
          test_partition_breaks_then_restart_works;
        Alcotest.test_case "channels do not interfere" `Quick
          test_two_channels_do_not_interfere;
        Alcotest.test_case "unordered override overlaps, replies ordered" `Quick
          test_unordered_target_overlaps_but_replies_in_order;
      ] );
    ( "supervision",
      [
        Alcotest.test_case "break during synch observes `Broken" `Quick
          test_break_during_synch_observes_broken;
        Alcotest.test_case "restart resolves in-flight exactly once" `Quick
          test_restart_inflight_resolves_each_exactly_once;
        Alcotest.test_case "resubmit preserves and replays calls" `Quick
          test_resubmit_preserves_and_replays_calls;
        Alcotest.test_case "resubmit dedups already-executed calls" `Quick
          test_resubmit_dedups_already_executed_calls;
      ] );
  ]

let () = Alcotest.run "cstream" suite
