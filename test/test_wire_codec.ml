(* Tests for the binary wire layer (docs/WIRE.md): Xdr.Bin value codec
   round trips (property-based, incl. adversarial inputs), the Chanhub
   packet frame codec, ack piggybacking, Nagle-style adaptive flushing
   and the sender-side sliding window. *)

module S = Sched.Scheduler
module B = Xdr.Bin
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module T = Cstream.Target
module W = Cstream.Wire
module GC = Cstream.Group_config

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Random value trees *)

let gen_value : Xdr.value QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_string =
    oneof
      [
        string_size ~gen:printable (int_range 0 12);
        (* raw bytes incl. NUL and non-ASCII *)
        string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 20);
        return "héllo wörld ⇒ ünïcode";
        string_size ~gen:printable (int_range 65 120);  (* beyond intern threshold *)
      ]
  in
  let gen_int =
    oneof [ small_signed_int; int; oneofl [ 0; -1; 1; max_int; min_int; 1 lsl 62 ] ]
  in
  let gen_real =
    oneof
      [
        float;
        oneofl [ 0.0; -0.0; nan; infinity; neg_infinity; Float.min_float; Float.max_float ];
      ]
  in
  sized @@ fix (fun self n ->
      let gen_pref =
        map3
          (fun stream call field -> Xdr.Pref { Xdr.ps_stream = stream; ps_call = call; ps_field = field })
          gen_string
          (oneof [ small_nat; oneofl [ 0; 1; max_int ] ])
          (oneof [ return None; map Option.some gen_string ])
      in
      let leaf =
        oneof
          [
            return Xdr.Unit;
            map (fun b -> Xdr.Bool b) bool;
            map (fun i -> Xdr.Int i) gen_int;
            map (fun r -> Xdr.Real r) gen_real;
            map (fun s -> Xdr.Str s) gen_string;
            gen_pref;
          ]
      in
      if n <= 0 then leaf
      else
        let sub = self (n / 3) in
        oneof
          [
            leaf;
            map2 (fun a b -> Xdr.Pair (a, b)) sub sub;
            map (fun vs -> Xdr.List vs) (list_size (int_range 0 6) sub);
            map
              (fun fields -> Xdr.Record fields)
              (list_size (int_range 0 5)
                 (pair (oneofl [ "q"; "i"; "p"; "k"; "a"; "name"; "grades" ]) sub));
            map2 (fun t v -> Xdr.Tagged (t, v)) (oneofl [ "n"; "g"; "u"; "f" ]) sub;
          ])

let arb_value = QCheck.make ~print:(Format.asprintf "%a" Xdr.pp_value) gen_value

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode v) = v" ~count:500 arb_value (fun v ->
      match B.of_string (B.to_string v) with
      | Ok v' -> Xdr.equal_value v v'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_size_matches =
  QCheck.Test.make ~name:"Bin.size v = length of encoding" ~count:200 arb_value (fun v ->
      B.size v = String.length (B.to_string v))

(* ------------------------------------------------------------------ *)
(* Explicit edge cases *)

let roundtrip v =
  match B.of_string (B.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "decode failed: %s" e

let assert_roundtrips what v =
  check Alcotest.bool what true (Xdr.equal_value v (roundtrip v))

let test_edge_values () =
  assert_roundtrips "min_int" (Xdr.Int min_int);
  assert_roundtrips "max_int" (Xdr.Int max_int);
  assert_roundtrips "negative" (Xdr.Int (-123456789));
  assert_roundtrips "nan" (Xdr.Real nan);
  assert_roundtrips "inf" (Xdr.Real infinity);
  assert_roundtrips "-inf" (Xdr.Real neg_infinity);
  assert_roundtrips "-0." (Xdr.Real (-0.0));
  assert_roundtrips "empty list" (Xdr.List []);
  assert_roundtrips "empty record" (Xdr.Record []);
  assert_roundtrips "empty string" (Xdr.Str "");
  assert_roundtrips "non-ascii" (Xdr.Str "日本語 résumé \x00\xff");
  assert_roundtrips "long string" (Xdr.Str (String.make 5000 '\xab'));
  assert_roundtrips "repeated fields"
    (Xdr.List
       (List.init 20 (fun i ->
            Xdr.Record [ ("q", Xdr.Int i); ("a", Xdr.Str "portname") ])));
  assert_roundtrips "promise ref"
    (Xdr.Pref { Xdr.ps_stream = "3|~r/a/main/1"; ps_call = 42; ps_field = None });
  assert_roundtrips "promise ref with field"
    (Xdr.Pref { Xdr.ps_stream = "3|~r/a/main/1"; ps_call = 0; ps_field = Some "hi" });
  assert_roundtrips "promise ref edge strings"
    (Xdr.Pref { Xdr.ps_stream = ""; ps_call = max_int; ps_field = Some "" });
  (* The stream id is repeated across a pipelined batch: it must go
     through the string-interning path like any other string. *)
  assert_roundtrips "interned stream ids"
    (Xdr.List
       (List.init 8 (fun i ->
            Xdr.Pref { Xdr.ps_stream = "7|~r/agent/group/9"; ps_call = i; ps_field = None })))

let test_pref_bad_field_marker_rejected () =
  (* Tag 0x0B (Pref), interned empty stream id (fresh entry, length 0),
     call 0, then a field marker that is neither 0 nor 1: the total
     decoder must reject, not crash. *)
  match B.of_string "\x0b\x00\x00\x00\x02" with
  | Ok v -> Alcotest.failf "bad field marker decoded as %a" Xdr.pp_value v
  | Error _ -> ()

let test_deep_nesting_roundtrips () =
  let rec deep n acc = if n = 0 then acc else deep (n - 1) (Xdr.Pair (Xdr.Int n, acc)) in
  assert_roundtrips "300 levels" (deep 300 Xdr.Unit)

let test_excessive_nesting_rejected () =
  (* Hand-built 2000-deep Pair spine: the decoder must refuse (depth
     cap) rather than risk a stack overflow — and refuse politely. *)
  let b = Buffer.create 4096 in
  for _ = 1 to 2000 do
    Buffer.add_char b '\x07' (* Pair *);
    Buffer.add_char b '\x00' (* Unit as first component *)
  done;
  Buffer.add_char b '\x00';
  match B.of_string (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "2000-deep nesting accepted"

let test_string_interning_compresses () =
  (* 50 records sharing field names and a port string: the intern table
     should make this far smaller than 50 standalone encodings. *)
  let item i = Xdr.Record [ ("port", Xdr.Str "record_grade"); ("seq", Xdr.Int i) ] in
  let batch = B.size (Xdr.List (List.init 50 item)) in
  let standalone = List.init 50 (fun i -> B.size (item i)) |> List.fold_left ( + ) 0 in
  check Alcotest.bool
    (Printf.sprintf "batched %dB < 60%% of standalone %dB" batch standalone)
    true
    (float_of_int batch < 0.6 *. float_of_int standalone)

(* ------------------------------------------------------------------ *)
(* Truncation / corruption: total decoding *)

let test_truncated_returns_error () =
  let victims =
    [
      Xdr.Int max_int;
      Xdr.Real 3.25;
      Xdr.Str "hello world";
      Xdr.List [ Xdr.Int 1; Xdr.Str "two"; Xdr.Real 3.0 ];
      Xdr.Record [ ("q", Xdr.Int 1); ("a", Xdr.Tagged ("n", Xdr.Unit)) ];
    ]
  in
  List.iter
    (fun v ->
      let enc = B.to_string v in
      for len = 0 to String.length enc - 1 do
        match B.of_string (String.sub enc 0 len) with
        | Error _ -> ()
        | Ok got ->
            Alcotest.failf "prefix %d/%d of %a decoded to %a" len (String.length enc)
              Xdr.pp_value v Xdr.pp_value got
      done)
    victims

let test_trailing_garbage_rejected () =
  let enc = B.to_string (Xdr.Int 5) ^ "x" in
  match B.of_string enc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let prop_corruption_never_raises =
  QCheck.Test.make ~name:"corrupted buffers never raise" ~count:300
    QCheck.(triple arb_value small_int (int_bound 255))
    (fun (v, pos, byte) ->
      let enc = Bytes.of_string (B.to_string v) in
      let pos = pos mod Bytes.length enc in
      Bytes.set enc pos (Char.chr byte);
      match B.of_string (Bytes.to_string enc) with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

let prop_random_bytes_never_raise =
  QCheck.Test.make ~name:"arbitrary byte strings never raise" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 40) (Gen.map Char.chr (Gen.int_range 0 255)))
    (fun s ->
      match B.of_string s with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Packet frame codec *)

let ack ?(pressure = 0) key upto = { CH.a_key = key; a_upto = upto; a_pressure = pressure }

let equal_acks a b =
  List.length a = List.length b
  && List.for_all2 (fun (x : CH.ack_entry) (y : CH.ack_entry) -> x = y) a b

let equal_packet (a : CH.packet) (b : CH.packet) =
  match (a, b) with
  | ( CH.Data { key = k1; first_seq = f1; acks = a1; items = i1 },
      CH.Data { key = k2; first_seq = f2; acks = a2; items = i2 } ) ->
      k1 = k2 && f1 = f2 && equal_acks a1 a2
      && List.length i1 = List.length i2
      && List.for_all2 Xdr.equal_value i1 i2
  | CH.Ack { acks = a1 }, CH.Ack { acks = a2 } -> equal_acks a1 a2
  | CH.Reset { key = k1; reason = r1 }, CH.Reset { key = k2; reason = r2 } ->
      k1 = k2 && r1 = r2
  | _ -> false

let sample_key = { CH.src = 3; label = "grades"; idx = 7; meta = "~r/a/grades/1/0" }

let test_packet_roundtrips () =
  let packets =
    [
      CH.Data
        {
          key = sample_key;
          first_seq = 42;
          acks = [ ack sample_key (-1); ack ~pressure:2 { sample_key with CH.idx = 8 } 17 ];
          items =
            List.init 5 (fun i ->
                W.call_item ~seq:(42 + i) ~cid:(100 + i) ~trace:None ~port:"record_grade"
                  ~kind:W.Call
                  ~args:(Xdr.Pair (Xdr.Str "stu00001", Xdr.Int 85)) ());
        };
      CH.Data { key = sample_key; first_seq = 0; acks = []; items = [] };
      CH.Ack { acks = [ ack ~pressure:1 sample_key 12 ] };
      CH.Ack { acks = [] };
      CH.Reset { key = sample_key; reason = "no such port group" };
    ]
  in
  List.iter
    (fun p ->
      match CH.decode_packet (CH.encode_packet p) with
      | Ok p' -> check Alcotest.bool "packet roundtrip" true (equal_packet p p')
      | Error e -> Alcotest.failf "packet decode failed: %s" e)
    packets

let test_packet_bytes_is_actual_size () =
  let p = CH.Ack { acks = [ ack sample_key 12 ] } in
  check Alcotest.int "packet_bytes = encoded length"
    (String.length (CH.encode_packet p))
    (CH.packet_bytes p)

let test_packet_garbage_rejected () =
  (match CH.decode_packet "" with Error _ -> () | Ok _ -> Alcotest.fail "empty frame accepted");
  (match CH.decode_packet "\x02\x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong version accepted");
  let enc = CH.encode_packet (CH.Reset { key = sample_key; reason = "r" }) in
  for len = 0 to String.length enc - 1 do
    match CH.decode_packet (String.sub enc 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated frame (%d bytes) accepted" len
  done

(* ------------------------------------------------------------------ *)
(* Behaviour: piggybacking, Nagle flush, sliding window *)

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  node_a : Net.node;
  node_b : Net.node;
  hub_a : CH.hub;
  hub_b : CH.hub;
}

let make_world ?(cfg = Net.default_config) ?(seed = 42) ?(ack_delay = 0.0) () =
  let sched = S.create ~seed () in
  let net = Net.create sched cfg in
  let node_a = Net.add_node net ~name:"a" in
  let node_b = Net.add_node net ~name:"b" in
  let hub_a = CH.create_hub ~ack_delay ~net:(net, node_a) () in
  let hub_b = CH.create_hub ~ack_delay ~net:(net, node_b) () in
  { sched; net; node_a; node_b; hub_a; hub_b }

let run_ok w =
  match S.run w.sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* A request/reply echo world over raw stream/target, returning the
   scheduler stats after [n] calls. *)
let run_echo ~w ~cfg ~n =
  let target =
    T.create w.hub_b ~gid:"echo"
      ~config:GC.(default |> with_reply_config cfg)
      (fun _conn ~seq:_ ~port:_ ~kind:_ ~args ~reply -> reply (W.W_normal args))
  in
  ignore (target : T.t);
  let se = SE.create w.hub_a ~agent:"t" ~dst:(Net.address w.node_b) ~gid:"echo" ~config:cfg () in
  let replies = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         for i = 1 to n do
           match
             SE.call se ~port:"p" ~kind:W.Call ~args:(Xdr.Int i) ~on_reply:(fun _ -> incr replies)
           with
           | Ok () -> ()
           | Error e -> Alcotest.failf "call failed: %s" e
         done;
         match SE.synch se with
         | Ok () -> ()
         | Error `Exception_reply -> Alcotest.fail "exception reply"
         | Error (`Broken r) -> Alcotest.failf "stream broke: %s" r));
  run_ok w;
  check Alcotest.int "all replies arrived" n !replies;
  S.stats w.sched

let test_piggybacking_halves_standalone_acks () =
  let cfg = { CH.default_config with CH.max_batch = 8; flush_interval = 1e-3 } in
  let without = run_echo ~w:(make_world ()) ~cfg ~n:64 in
  let with_ = run_echo ~w:(make_world ~ack_delay:1e-3 ()) ~cfg ~n:64 in
  let acks_off = Sim.Stats.peek without "chan_ack_packets" in
  let acks_on = Sim.Stats.peek with_ "chan_ack_packets" in
  check Alcotest.bool
    (Printf.sprintf "standalone ack packets: %d with piggyback <= half of %d without" acks_on
       acks_off)
    true
    (acks_on * 2 <= acks_off);
  check Alcotest.bool "some acks actually piggybacked" true
    (Sim.Stats.peek with_ "chan_piggybacked_acks" > 0)

let test_nagle_first_item_flushes_immediately () =
  let w = make_world () in
  let received_at = ref nan in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun _ -> received_at := S.now w.sched));
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:""
      { CH.adaptive_config with CH.flush_interval = 100e-3 }
  in
  ignore (S.spawn w.sched (fun () -> ignore (CH.send out (Xdr.Int 1) : (unit, string) result)));
  run_ok w;
  (* Idle channel: the item must leave immediately (one RTT ~ 1.1 ms),
     not wait for the 100 ms flush timer. *)
  check Alcotest.bool
    (Printf.sprintf "delivered at %.4fs, not on the flush timer" !received_at)
    true
    (!received_at < 10e-3)

let test_nagle_coalesces_under_load () =
  let w = make_world () in
  let batches = ref [] in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun items -> batches := List.length items :: !batches));
  let out =
    CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:""
      { CH.adaptive_config with CH.flush_interval = 100e-3 }
  in
  ignore
    (S.spawn w.sched (fun () ->
         (* All 20 sends happen at t=0: the first flushes alone (idle);
            the rest coalesce while it is in flight. *)
         for i = 1 to 20 do
           ignore (CH.send out (Xdr.Int i) : (unit, string) result)
         done));
  run_ok w;
  let batches = List.rev !batches in
  check Alcotest.int "all items arrive" 20 (List.fold_left ( + ) 0 batches);
  check Alcotest.bool
    (Printf.sprintf "first batch is the lone idle flush: %s"
       (String.concat "," (List.map string_of_int batches)))
    true
    (match batches with 1 :: rest -> rest <> [] && List.for_all (fun b -> b > 1) rest | _ -> false)

let test_window_backpressures_and_bounds_inflight () =
  let w = make_world () in
  let item = Xdr.Str (String.make 100 'x') in
  let item_bytes = B.size item in
  (* Window fits ~4 items; 20 sends must block and drain in waves. *)
  let cfg =
    {
      CH.adaptive_config with
      CH.max_inflight_bytes = 4 * item_bytes;
      max_batch = 4;
      flush_interval = 1e-3;
    }
  in
  let received = ref 0 in
  CH.on_connect w.hub_b ~label:"sink" (fun in_chan ->
      CH.set_deliver in_chan (fun items -> received := !received + List.length items));
  let out = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"sink" ~meta:"" cfg in
  let max_seen = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         for _ = 1 to 20 do
           (match CH.await_window out ~bytes:item_bytes with
           | Ok () -> ()
           | Error e -> Alcotest.failf "window wait failed: %s" e);
           (match CH.send out item with
           | Ok () -> ()
           | Error e -> Alcotest.failf "send failed: %s" e);
           if CH.inflight_bytes out > !max_seen then max_seen := CH.inflight_bytes out
         done));
  run_ok w;
  check Alcotest.int "all delivered" 20 !received;
  check Alcotest.bool
    (Printf.sprintf "inflight bytes bounded: %d <= %d" !max_seen cfg.CH.max_inflight_bytes)
    true
    (!max_seen <= cfg.CH.max_inflight_bytes)

let test_window_waiters_released_on_break () =
  let w = make_world () in
  let item = Xdr.Str (String.make 100 'x') in
  let cfg = { CH.adaptive_config with CH.max_inflight_bytes = 50; max_retries = 0 } in
  (* No acceptor for the label on b: data is answered with Reset, so
     the channel breaks while the second sender waits for window room. *)
  let out = CH.connect w.hub_a ~dst:(Net.address w.node_b) ~label:"nobody" ~meta:"" cfg in
  let got_error = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         ignore (CH.send out item : (unit, string) result);
         match CH.await_window out ~bytes:(B.size item) with
         | Ok () -> Alcotest.fail "window opened on a broken channel"
         | Error e -> got_error := Some e));
  run_ok w;
  match !got_error with
  | Some _ -> ()
  | None -> Alcotest.fail "waiter never released"

let test_stream_call_window_preserves_order () =
  (* Two fibers race calls through a tiny window. Wake order under
     back-pressure decides how the fibers interleave, but each fiber's
     own calls must still execute in its issue order, and nothing may
     be lost or duplicated. *)
  let w = make_world () in
  let cfg =
    { CH.adaptive_config with CH.max_inflight_bytes = 60; max_batch = 2; flush_interval = 1e-3 }
  in
  let executed = ref [] in
  let target =
    T.create w.hub_b ~gid:"echo"
      ~config:GC.(default |> with_reply_config cfg)
      (fun _conn ~seq:_ ~port:_ ~kind:_ ~args ~reply ->
        (match args with Xdr.Int i -> executed := i :: !executed | _ -> ());
        reply (W.W_normal args))
  in
  ignore (target : T.t);
  let se = SE.create w.hub_a ~agent:"t" ~dst:(Net.address w.node_b) ~gid:"echo" ~config:cfg () in
  let caller lo hi =
    S.spawn w.sched (fun () ->
        for i = lo to hi do
          match SE.call se ~port:"p" ~kind:W.Call ~args:(Xdr.Int i) ~on_reply:(fun _ -> ()) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "call failed: %s" e
        done)
  in
  ignore (caller 1 15);
  ignore (caller 101 115);
  ignore
    (S.spawn w.sched (fun () ->
         S.sleep w.sched 1.0;
         match SE.synch se with Ok () -> () | Error _ -> Alcotest.fail "broke"));
  run_ok w;
  let executed = List.rev !executed in
  let of_fiber lo hi = List.filter (fun i -> lo <= i && i <= hi) executed in
  check Alcotest.(list int) "fiber 1's calls in its issue order"
    (List.init 15 (fun i -> i + 1))
    (of_fiber 1 15);
  check Alcotest.(list int) "fiber 2's calls in its issue order"
    (List.init 15 (fun i -> i + 101))
    (of_fiber 101 115);
  check Alcotest.int "nothing lost or duplicated" 30 (List.length executed)

(* ------------------------------------------------------------------ *)
(* Lazy views (docs/WIRE.md §Lazy views): a scan-validated slice must
   be interchangeable with the tree it covers. *)

let prop_view_materialize_equiv =
  QCheck.Test.make ~name:"materialize (view (encode v)) = v" ~count:500 arb_value (fun v ->
      match Xdr.View.of_string (B.to_string v) with
      | Error e -> QCheck.Test.fail_reportf "scan failed: %s" e
      | Ok vw -> (
          match Xdr.View.materialize vw with
          | Ok v' -> Xdr.equal_value v v'
          | Error e -> QCheck.Test.fail_reportf "materialize failed: %s" e))

let prop_view_navigation_equiv =
  QCheck.Test.make ~name:"view slicing = tree navigation" ~count:300 arb_value (fun v ->
      match Xdr.View.of_string (B.to_string v) with
      | Error e -> QCheck.Test.fail_reportf "scan failed: %s" e
      | Ok vw -> (
          let mat sub =
            match Xdr.View.materialize sub with
            | Ok x -> x
            | Error e -> QCheck.Test.fail_reportf "materialize failed: %s" e
          in
          match v with
          | Xdr.Pair (a, b) -> (
              match Xdr.View.pair_parts vw with
              | Ok (va, vb) -> Xdr.equal_value a (mat va) && Xdr.equal_value b (mat vb)
              | Error e -> QCheck.Test.fail_reportf "pair_parts: %s" e)
          | Xdr.List items -> (
              match (Xdr.View.list_items vw, Xdr.View.list_item vw (List.length items)) with
              | Ok subs, Ok None ->
                  List.length subs = List.length items
                  && List.for_all2 (fun x s -> Xdr.equal_value x (mat s)) items subs
                  && (items = []
                     ||
                     let k = List.length items / 2 in
                     match Xdr.View.list_item vw k with
                     | Ok (Some s) -> Xdr.equal_value (List.nth items k) (mat s)
                     | _ -> false)
              | _ -> false)
          | Xdr.Record fields -> (
              match Xdr.View.record_fields vw with
              | Ok subs ->
                  List.length subs = List.length fields
                  && List.for_all2
                       (fun (n, x) (n', s) -> String.equal n n' && Xdr.equal_value x (mat s))
                       fields subs
                  && (fields = []
                     ||
                     (* both sides resolve a duplicate name to its first
                        occurrence *)
                     let n, _ = List.hd fields in
                     match Xdr.View.record_field vw n with
                     | Ok (Some s) -> Xdr.equal_value (List.assoc n fields) (mat s)
                     | _ -> false)
              | Error e -> QCheck.Test.fail_reportf "record_fields: %s" e)
          | Xdr.Tagged (t, inner) -> (
              match Xdr.View.tagged_parts vw with
              | Ok (t', s) -> String.equal t t' && Xdr.equal_value inner (mat s)
              | Error e -> QCheck.Test.fail_reportf "tagged_parts: %s" e)
          | leaf -> Xdr.equal_value leaf (mat vw)))

let rec tree_has_prefs = function
  | Xdr.Pref _ -> true
  | Xdr.Pair (a, b) -> tree_has_prefs a || tree_has_prefs b
  | Xdr.List vs -> List.exists tree_has_prefs vs
  | Xdr.Record fs -> List.exists (fun (_, x) -> tree_has_prefs x) fs
  | Xdr.Tagged (_, x) -> tree_has_prefs x
  | Xdr.Unit | Xdr.Bool _ | Xdr.Int _ | Xdr.Real _ | Xdr.Str _ -> false

let prop_has_prefs_matches_tree =
  QCheck.Test.make ~name:"View.has_prefs = tree walk" ~count:300 arb_value (fun v ->
      match Xdr.View.of_string (B.to_string v) with
      | Error e -> QCheck.Test.fail_reportf "scan failed: %s" e
      | Ok vw -> Bool.equal (Xdr.View.has_prefs vw) (tree_has_prefs v))

let view_of v =
  match Xdr.View.of_string (B.to_string v) with
  | Ok vw -> vw
  | Error e -> Alcotest.failf "view scan failed: %s" e

let materialize_ok vw =
  match Xdr.View.materialize vw with Ok v -> v | Error e -> Alcotest.failf "materialize: %s" e

let test_view_projection_units () =
  let l = Xdr.List [ Xdr.Int 10; Xdr.Str "x"; Xdr.Real 2.5 ] in
  let lw = view_of l in
  (match Xdr.View.list_item lw 1 with
  | Ok (Some it) -> check Alcotest.bool "item 1" true (Xdr.equal_value (Xdr.Str "x") (materialize_ok it))
  | _ -> Alcotest.fail "list_item 1 missing");
  (match Xdr.View.list_item lw 3 with
  | Ok None -> ()
  | _ -> Alcotest.fail "index past the end must be Ok None");
  (match Xdr.View.list_item lw (-1) with
  | Error _ -> ()
  | _ -> Alcotest.fail "negative index must be an error");
  let r = Xdr.Record [ ("a", Xdr.Int 1); ("b", Xdr.Str "bee") ] in
  let rw = view_of r in
  (match Xdr.View.record_field rw "b" with
  | Ok (Some f) -> check Alcotest.bool "field b" true (Xdr.equal_value (Xdr.Str "bee") (materialize_ok f))
  | _ -> Alcotest.fail "record_field b missing");
  (match Xdr.View.record_field rw "zz" with
  | Ok None -> ()
  | _ -> Alcotest.fail "absent field must be Ok None");
  (* Pipeline's one-field projection rides the same slicing. *)
  (match Pipeline.project_view ~field:(Some "b") rw with
  | Ok v -> check Alcotest.bool "project_view field" true (Xdr.equal_value (Xdr.Str "bee") v)
  | Error e -> Alcotest.fail e);
  (match Pipeline.project_view ~field:None rw with
  | Ok v -> check Alcotest.bool "project_view whole" true (Xdr.equal_value r v)
  | Error e -> Alcotest.fail e);
  match Pipeline.project_view ~field:(Some "b") lw with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "field projection of a non-record must be an error"

(* ------------------------------------------------------------------ *)
(* Connection dictionary (docs/WIRE.md §Connection dictionary) *)

let dict_frame dict v =
  B.with_encoder (fun e ->
      B.use_dict e dict;
      B.add_value e v;
      B.contents e)

let dict_decode dt s =
  let d = B.decoder s in
  B.use_dict_table d dt;
  match B.read_value d with
  | Error _ as e -> e
  | Ok v -> ( match B.expect_end d with Ok () -> Ok v | Error _ as e -> e)

let prop_dict_cross_frame_roundtrip =
  (* One dictionary, one table, a sequence of frames: every frame must
     decode back to its value, in order — defines land in the shared
     table exactly once and later refs resolve against it. *)
  QCheck.Test.make ~name:"dict frames roundtrip in sequence" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) arb_value)
    (fun vs ->
      let dict = B.create_dict () in
      let frames = List.map (dict_frame dict) vs in
      let dt = B.create_dict_table () in
      List.for_all2
        (fun v s ->
          match dict_decode dt s with
          | Ok v' -> Xdr.equal_value v v'
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)
        vs frames)

let prop_dict_view_cross_frame =
  (* Same, through views: scan every frame first (defines feed the
     shared table during the scan), materialize afterwards — and twice,
     because replays of an already-scanned slice must not re-append to
     the connection table. *)
  QCheck.Test.make ~name:"dict frames: scan all, then materialize = originals" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) arb_value)
    (fun vs ->
      let dict = B.create_dict () in
      let frames = List.map (dict_frame dict) vs in
      let dt = B.create_dict_table () in
      let views =
        List.map
          (fun s ->
            let d = B.decoder s in
            B.use_dict_table d dt;
            match Xdr.View.read d with
            | Ok vw -> vw
            | Error e -> QCheck.Test.fail_reportf "scan failed: %s" e)
          frames
      in
      List.for_all2
        (fun v vw ->
          match (Xdr.View.materialize vw, Xdr.View.materialize vw) with
          | Ok a, Ok b -> Xdr.equal_value v a && Xdr.equal_value v b
          | _ -> false)
        vs views)

let test_dict_compresses_across_frames () =
  let frame i = Xdr.Record [ ("host", Xdr.Str "shard-host-03.internal"); ("seq", Xdr.Int i) ] in
  let frames = List.init 10 frame in
  let plain = List.map B.to_string frames in
  let dict = B.create_dict () in
  let promoted = List.map (dict_frame dict) frames in
  (* First sighting stays an inline define: frame 1 is byte-identical
     to the dictionary-less encoding. *)
  check Alcotest.string "first frame unchanged" (List.nth plain 0) (List.nth promoted 0);
  let total l = List.fold_left (fun a s -> a + String.length s) 0 l in
  check Alcotest.bool
    (Printf.sprintf "promoted %dB < plain %dB" (total promoted) (total plain))
    true
    (total promoted < total plain);
  check Alcotest.bool "strings were promoted" true (B.dict_defines dict > 0);
  check Alcotest.bool "refs replaced re-sends" true (B.dict_refs dict > 0);
  let dt = B.create_dict_table () in
  List.iteri
    (fun i s ->
      match dict_decode dt s with
      | Ok v -> check Alcotest.bool "frame decodes" true (Xdr.equal_value (frame i) v)
      | Error e -> Alcotest.failf "frame %d failed: %s" i e)
    promoted

let test_dict_reset_bumps_epoch_and_redefines () =
  let dict = B.create_dict () in
  let v = Xdr.Str "shard-host-01.internal" in
  let f1 = dict_frame dict v in
  let _f2 = dict_frame dict v in
  let f3 = dict_frame dict v in
  check Alcotest.bool "steady state is a short slot ref" true
    (String.length f3 < String.length f1);
  let e0 = B.dict_epoch dict in
  B.reset_dict dict;
  check Alcotest.bool "epoch bumped" true (B.dict_epoch dict > e0);
  check Alcotest.int "promotions forgotten" 0 (B.dict_size dict);
  (* The incarnation's first frame looks exactly like a fresh
     connection's, and decodes against a fresh table. *)
  let g1 = dict_frame dict v in
  check Alcotest.string "first frame after reset re-defines" f1 g1;
  let _g2 = dict_frame dict v in
  let g3 = dict_frame dict v in
  let dt = B.create_dict_table () in
  List.iter
    (fun s ->
      match dict_decode dt s with
      | Ok v' -> check Alcotest.bool "new-epoch frame decodes" true (Xdr.equal_value v v')
      | Error e -> Alcotest.failf "new-epoch frame failed: %s" e)
    [ g1; _g2; g3 ];
  (* A stale ref frame against a fresh table must be refused, not
     crash — this is why receivers swap tables on an epoch change. *)
  match dict_decode (B.create_dict_table ()) f3 with
  | Error _ -> ()
  | Ok got -> Alcotest.failf "stale dict ref decoded as %a" Xdr.pp_value got

(* ------------------------------------------------------------------ *)
(* Golden wire bytes: with the dictionary off, every E12 cell must stay
   digit-for-digit on the pre-dictionary numbers (the same table the
   bench runner gates on before writing BENCH_wire.json). *)

let e12_goldens =
  [
    ("RPC", false, 1600, 68098);
    ("RPC", true, 801, 51319);
    ("stream B=16", false, 100, 14833);
    ("stream B=16", true, 52, 13361);
    ("send B=16", false, 100, 14096);
    ("send B=16", true, 52, 12624);
    ("stream adaptive", false, 48, 13077);
    ("stream adaptive", true, 29, 12520);
  ]

let test_e12_golden_bytes () =
  let rows = Workloads.Exp_wire.e12_rows () in
  check Alcotest.int "row count" (List.length e12_goldens) (List.length rows);
  List.iter2
    (fun (mode, pb, msgs, bytes) (r : Workloads.Exp_wire.row) ->
      check Alcotest.string "mode" mode r.Workloads.Exp_wire.r_mode;
      check Alcotest.bool (mode ^ " piggyback") pb r.Workloads.Exp_wire.r_piggyback;
      check Alcotest.int (mode ^ " msgs") msgs r.Workloads.Exp_wire.r_msgs;
      check Alcotest.int (mode ^ " bytes") bytes r.Workloads.Exp_wire.r_bytes)
    e12_goldens rows

(* ------------------------------------------------------------------ *)
(* Satellite regressions: field-order tolerant parse, NaN equality *)

let test_parse_call_field_order_insensitive () =
  let reordered =
    Xdr.Record
      [
        ("a", Xdr.Str "payload");
        ("k", Xdr.Str "c");
        ("p", Xdr.Str "work");
        ("i", Xdr.Int 9);
        ("q", Xdr.Int 4);
        ("future_field", Xdr.Unit);  (* unknown extras ignored *)
      ]
  in
  match W.parse_call reordered with
  | Ok (4, 9, "work", W.Call, Xdr.Str "payload") -> ()
  | Ok _ -> Alcotest.fail "wrong fields extracted"
  | Error e -> Alcotest.fail e

let test_parse_call_missing_field_rejected () =
  let missing = Xdr.Record [ ("q", Xdr.Int 1); ("i", Xdr.Int 2); ("p", Xdr.Str "x") ] in
  match W.parse_call missing with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete call accepted"

let test_equal_value_nan () =
  check Alcotest.bool "NaN = NaN" true (Xdr.equal_value (Xdr.Real nan) (Xdr.Real nan));
  check Alcotest.bool "nested NaN" true
    (Xdr.equal_value
       (Xdr.List [ Xdr.Real nan; Xdr.Int 1 ])
       (Xdr.List [ Xdr.Real nan; Xdr.Int 1 ]));
  check Alcotest.bool "NaN <> 1." false (Xdr.equal_value (Xdr.Real nan) (Xdr.Real 1.0));
  check Alcotest.bool "0. = -0." true (Xdr.equal_value (Xdr.Real 0.0) (Xdr.Real (-0.0)));
  check Alcotest.bool "Int <> Real" false (Xdr.equal_value (Xdr.Int 1) (Xdr.Real 1.0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wire_codec"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_size_matches;
          Alcotest.test_case "edge values" `Quick test_edge_values;
          Alcotest.test_case "deep nesting roundtrips" `Quick test_deep_nesting_roundtrips;
          Alcotest.test_case "excessive nesting rejected" `Quick test_excessive_nesting_rejected;
          Alcotest.test_case "promise-ref bad field marker rejected" `Quick
            test_pref_bad_field_marker_rejected;
          Alcotest.test_case "string interning compresses" `Quick test_string_interning_compresses;
        ] );
      ( "total decoding",
        [
          Alcotest.test_case "every truncation errors" `Quick test_truncated_returns_error;
          Alcotest.test_case "trailing garbage rejected" `Quick test_trailing_garbage_rejected;
          QCheck_alcotest.to_alcotest prop_corruption_never_raises;
          QCheck_alcotest.to_alcotest prop_random_bytes_never_raise;
        ] );
      ( "packet frames",
        [
          Alcotest.test_case "packet roundtrips" `Quick test_packet_roundtrips;
          Alcotest.test_case "packet_bytes is actual size" `Quick test_packet_bytes_is_actual_size;
          Alcotest.test_case "garbage frames rejected" `Quick test_packet_garbage_rejected;
        ] );
      ( "adaptive wire",
        [
          Alcotest.test_case "piggybacking halves standalone acks" `Quick
            test_piggybacking_halves_standalone_acks;
          Alcotest.test_case "nagle: idle flush is immediate" `Quick
            test_nagle_first_item_flushes_immediately;
          Alcotest.test_case "nagle: coalesces under load" `Quick test_nagle_coalesces_under_load;
          Alcotest.test_case "window bounds inflight bytes" `Quick
            test_window_backpressures_and_bounds_inflight;
          Alcotest.test_case "window waiters released on break" `Quick
            test_window_waiters_released_on_break;
          Alcotest.test_case "window preserves call order" `Quick
            test_stream_call_window_preserves_order;
        ] );
      ( "lazy views",
        [
          QCheck_alcotest.to_alcotest prop_view_materialize_equiv;
          QCheck_alcotest.to_alcotest prop_view_navigation_equiv;
          QCheck_alcotest.to_alcotest prop_has_prefs_matches_tree;
          Alcotest.test_case "projection units" `Quick test_view_projection_units;
        ] );
      ( "connection dictionary",
        [
          QCheck_alcotest.to_alcotest prop_dict_cross_frame_roundtrip;
          QCheck_alcotest.to_alcotest prop_dict_view_cross_frame;
          Alcotest.test_case "compresses across frames" `Quick test_dict_compresses_across_frames;
          Alcotest.test_case "reset bumps epoch and redefines" `Quick
            test_dict_reset_bumps_epoch_and_redefines;
        ] );
      ( "golden wire",
        [ Alcotest.test_case "E12 dictionary-off bytes" `Quick test_e12_golden_bytes ] );
      ( "satellites",
        [
          Alcotest.test_case "parse_call ignores field order" `Quick
            test_parse_call_field_order_insensitive;
          Alcotest.test_case "parse_call rejects missing fields" `Quick
            test_parse_call_missing_field_rejected;
          Alcotest.test_case "equal_value handles NaN" `Quick test_equal_value_nan;
        ] );
    ]
