(* Multicore lanes (docs/DOMAINS.md): the Sched.Pool offload path and
   the domain-safety of the telemetry it touches. Pool.run round-trips
   values and exceptions through a worker domain; offloaded handler
   bodies under a sharded group keep per-key order and exactly-once;
   and — the regression that guards everything else — a simulation that
   never touches a pool is still byte-for-byte deterministic: two
   same-seed runs produce identical span dumps and identical counter
   tables (including the wire byte counters, so the wire is
   byte-identical too). *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module GC = Cstream.Group_config
module G = Argus.Guardian

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* ------------------------------------------------------------------ *)
(* Pool.run basics *)

let pool_value () =
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:2 in
  check Alcotest.int "size" 2 (Sched.Pool.size pool);
  let got = ref 0 in
  ignore (S.spawn sched (fun () -> got := Sched.Pool.run pool (fun () -> 6 * 7)));
  run_ok sched;
  Sched.Pool.shutdown pool;
  check Alcotest.int "offloaded value" 42 !got

exception Boom of string

let pool_exception () =
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:1 in
  let got = ref "" in
  ignore
    (S.spawn sched (fun () ->
         match Sched.Pool.run pool (fun () -> raise (Boom "from the worker")) with
         | () -> got := "no exception"
         | exception Boom m -> got := m));
  run_ok sched;
  Sched.Pool.shutdown pool;
  check Alcotest.string "re-raised at the suspension point" "from the worker" !got

let pool_many_fibers () =
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:4 in
  let n = 32 in
  let total = ref 0 in
  for i = 1 to n do
    ignore
      (S.spawn sched (fun () ->
           let v = Sched.Pool.run pool (fun () -> i * i) in
           total := !total + v))
  done;
  run_ok sched;
  Sched.Pool.shutdown pool;
  check Alcotest.int "all offloads returned" (n * (n + 1) * ((2 * n) + 1) / 6) !total

let pool_outside_fiber () =
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:1 in
  (match Sched.Pool.run pool (fun () -> 0) with
  | _ -> Alcotest.fail "run outside fiber context should raise"
  | exception Invalid_argument _ -> ());
  Sched.Pool.shutdown pool

let pool_after_shutdown () =
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:1 in
  Sched.Pool.shutdown pool;
  Sched.Pool.shutdown pool (* idempotent *);
  let got = ref "" in
  ignore
    (S.spawn sched (fun () ->
         match Sched.Pool.run pool (fun () -> 0) with
         | _ -> got := "ran"
         | exception Invalid_argument _ -> got := "refused"));
  run_ok sched;
  check Alcotest.string "run after shutdown refused" "refused" !got

(* ------------------------------------------------------------------ *)
(* Offloaded handler bodies under a sharded group *)

type world = {
  sched : S.t;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
}

let make_world ?(seed = 42) () =
  let sched = S.create ~seed () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  { sched; server_node; client_hub; server }

let batch_cfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let kv_sig =
  Core.Sigs.hsig0 "kv_work" ~arg:(Xdr.pair Xdr.int Xdr.int) ~res:Xdr.int

(* The tentpole contract: with_offload moves only the handler body onto
   worker domains — per-key call order, exactly-once and reply
   completeness are untouched. The book is mutex-guarded because
   offloaded bodies genuinely run concurrently. *)
let offload_group_order () =
  let w = make_world () in
  let pool = Sched.Pool.create w.sched ~domains:4 in
  G.register_group w.server ~group:"hot"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_shards 4 |> with_offload pool)
    ();
  let book_m = Stdlib.Mutex.create () in
  let seen : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let ordered = ref true in
  G.register w.server ~group:"hot" kv_sig (fun _ctx (key, op) ->
      Stdlib.Mutex.lock book_m;
      (match Hashtbl.find_opt seen key with
      | Some (last :: _) when last >= op -> ordered := false
      | _ -> ());
      Hashtbl.replace seen key
        (op :: Option.value ~default:[] (Hashtbl.find_opt seen key));
      Stdlib.Mutex.unlock book_m;
      Ok (op * 2));
  let n = 48 and keys = 8 in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = Core.Agent.create w.client_hub ~name:"load" ~config:batch_cfg () in
         let h = R.bind ag ~dst:(Net.address w.server_node) ~gid:"hot" kv_sig in
         let promises = List.init n (fun i -> R.stream_call h (i mod keys, i / keys)) in
         R.flush h;
         List.iteri
           (fun i p ->
             match P.claim p with
             | P.Normal v -> check Alcotest.int "reply value" (2 * (i / keys)) v
             | P.Signal _ | P.Unavailable _ | P.Failure _ ->
                 Alcotest.fail "offloaded call failed")
           promises));
  run_ok w.sched;
  Sched.Pool.shutdown pool;
  let executed = Hashtbl.fold (fun _ ops acc -> acc + List.length ops) seen 0 in
  let dups =
    Hashtbl.fold
      (fun _ ops acc -> acc + (List.length ops - List.length (List.sort_uniq compare ops)))
      seen 0
  in
  check Alcotest.bool "per-key order kept" true !ordered;
  check Alcotest.int "exactly-once: none lost" n executed;
  check Alcotest.int "exactly-once: no duplicates" 0 dups

(* ------------------------------------------------------------------ *)
(* Determinism with the pool disabled *)

(* One traced sharded run; returns the full span dump and the complete
   counter table. The counters include the wire byte counters, so
   equality of the tables means the two runs put byte-identical traffic
   on the wire. *)
let traced_run seed =
  let w = make_world ~seed () in
  let spans = S.spans w.sched in
  Sim.Span.enable spans true;
  G.register_group w.server ~group:"hot"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_shards 4)
    ();
  G.register w.server ~group:"hot" kv_sig (fun ctx (_key, op) ->
      S.sleep ctx.G.sched 1e-4;
      Ok (op + 1));
  ignore
    (S.spawn w.sched (fun () ->
         let ag = Core.Agent.create w.client_hub ~name:"load" ~config:batch_cfg () in
         let h = R.bind ag ~dst:(Net.address w.server_node) ~gid:"hot" kv_sig in
         let promises = List.init 24 (fun i -> R.stream_call h (i mod 6, i / 6)) in
         R.flush h;
         List.iter (fun p -> ignore (P.claim p : (int, Core.Sigs.nothing) P.outcome)) promises));
  run_ok w.sched;
  (Format.asprintf "%a" Sim.Span.dump spans, Sim.Stats.counters (S.stats w.sched))

let determinism_pool_off () =
  let dump1, counters1 = traced_run 7 in
  let dump2, counters2 = traced_run 7 in
  check Alcotest.string "same-seed span dumps identical" dump1 dump2;
  check
    Alcotest.(list (pair string int))
    "same-seed counters identical (incl. wire bytes)" counters1 counters2;
  check Alcotest.bool "the run did record spans" true (String.length dump1 > 0)

(* ------------------------------------------------------------------ *)
(* Telemetry under real concurrent domains *)

let stats_cross_domain () =
  let stats = Sim.Stats.create () in
  let c = Sim.Stats.counter stats "hits" in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Sim.Stats.incr c
            done))
  in
  for _ = 1 to per_domain do
    Sim.Stats.incr c
  done;
  List.iter Domain.join domains;
  check Alcotest.int "no lost increments across domains" (5 * per_domain)
    (Sim.Stats.count c)

let span_cross_domain () =
  let sp = Sim.Span.create () in
  Sim.Span.enable sp true;
  let record note =
    Sim.Span.record sp ~time:0.0 ~kind:Sim.Span.Exec_begin ~trace:0 ~note ()
  in
  let per_domain = 100 in
  let domains =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              record (Printf.sprintf "d%d" d)
            done))
  in
  for _ = 1 to per_domain do
    record "main"
  done;
  List.iter Domain.join domains;
  let events = Sim.Span.events sp in
  check Alcotest.int "all domains' events merged" (3 * per_domain) (List.length events);
  List.iter
    (fun note ->
      check Alcotest.int ("events from " ^ note) per_domain
        (List.length (List.filter (fun e -> e.Sim.Span.ev_note = note) events)))
    [ "main"; "d0"; "d1" ]

(* ------------------------------------------------------------------ *)
(* Span.diff unit *)

let span_diff () =
  let mk kinds =
    let sp = Sim.Span.create () in
    Sim.Span.enable sp true;
    List.iter (fun k -> Sim.Span.record sp ~time:0.0 ~kind:k ~trace:1 ~node:0 ()) kinds;
    sp
  in
  let a = mk Sim.Span.[ Issue; Transmit; Retransmit; Retransmit; Deliver ] in
  let b = mk Sim.Span.[ Issue; Transmit; Retransmit; Deliver; Claim ] in
  check Alcotest.int "identical stores diff empty" 0 (List.length (Sim.Span.diff a a));
  let d = Sim.Span.diff a b in
  let lefts = List.filter (fun (s, _) -> s = `Left) d in
  let rights = List.filter (fun (s, _) -> s = `Right) d in
  (* multiplicity counts: two retransmits against one leaves one *)
  check Alcotest.int "left-only" 1 (List.length lefts);
  check Alcotest.bool "left-only is the extra retransmit" true
    (List.for_all (fun (_, e) -> e.Sim.Span.ev_kind = Sim.Span.Retransmit) lefts);
  check Alcotest.int "right-only" 1 (List.length rights);
  check Alcotest.bool "right-only is the claim" true
    (List.for_all (fun (_, e) -> e.Sim.Span.ev_kind = Sim.Span.Claim) rights)

(* ------------------------------------------------------------------ *)
(* Xdr.View.snapshot: a frame view handed to a worker domain stays
   valid while the connection's mutable intern and dictionary tables
   keep growing under later frames (docs/DOMAINS.md). *)

let view_snapshot_cross_domain () =
  let open Xdr in
  let record =
    Record [ ("grade", Str "alpha"); ("score", Int 17); ("again", Str "alpha") ]
  in
  let dict = Bin.create_dict () in
  let frame v =
    let enc = Bin.create_encoder () in
    Bin.use_dict enc dict;
    Bin.add_value enc v;
    Bin.contents enc
  in
  let f1 = frame record in
  (* second sighting promotes the repeated strings into the dict *)
  let f2 = frame record in
  let f3 = frame (Record [ ("grade", Str "beta"); ("later", Str "later") ]) in
  let table = Bin.create_dict_table () in
  let read_frame f =
    let d = Bin.decoder f in
    Bin.use_dict_table d table;
    match View.read d with
    | Ok v -> v
    | Error e -> Alcotest.failf "view read: %s" e
  in
  ignore (read_frame f1 : View.t);
  let v2 = read_frame f2 in
  let snap = View.snapshot v2 in
  (* keep the connection busy: more defines land in the shared table *)
  ignore (read_frame f3 : View.t);
  let sched = S.create () in
  let pool = Sched.Pool.create sched ~domains:2 in
  let got = ref None in
  ignore
    (S.spawn sched (fun () ->
         got :=
           Some
             (Sched.Pool.run pool (fun () ->
                  let grade =
                    match View.record_field snap "grade" with
                    | Ok (Some sub) -> (
                        match View.as_string sub with
                        | Ok s -> s
                        | Error e -> Alcotest.failf "as_string: %s" e)
                    | Ok None -> Alcotest.fail "field grade missing"
                    | Error e -> Alcotest.failf "record_field: %s" e
                  in
                  let whole =
                    match View.materialize snap with
                    | Ok m -> m
                    | Error e -> Alcotest.failf "materialize: %s" e
                  in
                  (grade, whole)))));
  run_ok sched;
  Sched.Pool.shutdown pool;
  match !got with
  | None -> Alcotest.fail "worker did not run"
  | Some (grade, whole) ->
      check Alcotest.string "projected field across domains" "alpha" grade;
      check Alcotest.bool "materialized equals the original" true (equal_value record whole)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "domains"
    [
      ( "pool",
        [
          Alcotest.test_case "offload returns the value" `Quick pool_value;
          Alcotest.test_case "offload re-raises the exception" `Quick pool_exception;
          Alcotest.test_case "many fibers share the pool" `Quick pool_many_fibers;
          Alcotest.test_case "run outside fiber context refused" `Quick pool_outside_fiber;
          Alcotest.test_case "run after shutdown refused" `Quick pool_after_shutdown;
        ] );
      ( "offload",
        [
          Alcotest.test_case "sharded group: order + exactly-once kept" `Quick
            offload_group_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool off: same-seed runs byte-identical" `Quick
            determinism_pool_off;
        ] );
      ( "views",
        [
          Alcotest.test_case "View.snapshot safe across domains" `Quick
            view_snapshot_cross_domain;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats counters atomic across domains" `Quick
            stats_cross_domain;
          Alcotest.test_case "span rings merge across domains" `Quick span_cross_domain;
          Alcotest.test_case "span diff multiset semantics" `Quick span_diff;
        ] );
    ]
