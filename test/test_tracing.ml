(* Causal tracing (docs/TRACING.md): per-call trace ids allocated at
   issue, span timelines across every lifecycle edge, trace-id
   stability across stream incarnations ([restart_resubmit] replays
   under the original id and the dedup join is recorded) and across a
   parked pipelined call (park + substitute spans). With tracing
   disabled the wire encodings are byte-for-byte the pre-tracing
   format and the span store records nothing. *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module W = Cstream.Wire
module GC = Cstream.Group_config
module G = Argus.Guardian
module Span = Sim.Span

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* ------------------------------------------------------------------ *)
(* Fixture: one client node, one server guardian, spans enabled. *)

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
  spans : Span.t;
}

let make_world ?(seed = 42) ?(trace = true) () =
  let sched = S.create ~seed () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let spans = S.spans sched in
  Span.enable spans trace;
  { sched; net; server_node; client_hub; server; spans }

let inc_sig = Core.Sigs.hsig0 "inc" ~arg:Xdr.int ~res:Xdr.int

(* Stream config with fast break detection for the resubmit test. *)
let fast_cfg = { CH.default_config with CH.retransmit_timeout = 5e-3; max_retries = 3 }
let batch_cfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let handle w ?(config = batch_cfg) ~agent ~gid () =
  let ag = Core.Agent.create w.client_hub ~name:agent ~config () in
  R.bind ag ~dst:(Net.address w.server_node) ~gid inc_sig

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let claim_normal p =
  match P.claim p with
  | P.Normal v -> v
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> Alcotest.fail "call failed"

let trace_of p =
  match P.trace p with
  | Some tid -> tid
  | None -> Alcotest.fail "promise carries no trace id"

(* [kinds] appear in [events], in order (as a subsequence). *)
let check_order what events kinds =
  let rec go evs = function
    | [] -> ()
    | k :: rest -> (
        match List.find_opt (fun e -> e.Span.ev_kind = k) evs with
        | None -> Alcotest.failf "%s: missing %s span" what (Span.kind_label k)
        | Some e ->
            let tail =
              let rec drop = function
                | x :: tl when x != e -> drop tl
                | _ :: tl -> tl
                | [] -> []
              in
              drop evs
            in
            go tail rest)
  in
  go events kinds

(* ------------------------------------------------------------------ *)
(* A plain call's full lifecycle, in causal order, under one trace id. *)

let test_lifecycle_spans () =
  let w = make_world () in
  G.register_group w.server ~group:"g"
    ~config:GC.(default |> with_reply_config batch_cfg)
    ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  let tid = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"g" () in
         let p = R.stream_call h 41 in
         R.flush h;
         check Alcotest.int "result" 42 (claim_normal p);
         tid := trace_of p));
  run_ok w.sched;
  let evs = Span.events_of w.spans ~trace:!tid in
  check_order "lifecycle" evs
    Span.[ Issue; Enqueue; Transmit; Deliver; Dispatch; Exec_begin; Exec_end; Reply; Claim ];
  check Alcotest.bool "reply acked" true (Span.has w.spans ~trace:!tid Span.Ack);
  check Alcotest.bool "no park on a plain call" false (Span.has w.spans ~trace:!tid Span.Park);
  (* The rendered story mentions the trace and the stable stream id. *)
  let story = Span.timeline w.spans ~trace:!tid in
  check Alcotest.bool "timeline names the trace" true
    (contains ~affix:(Printf.sprintf "trace %d" !tid) story)

(* ------------------------------------------------------------------ *)
(* Trace-id stability across [restart_resubmit]: the server crashes
   while the (slow) handler runs; the resubmitted duplicate joins the
   still-running first execution under the original trace id. *)

let test_resubmit_keeps_trace_and_joins () =
  let w = make_world () in
  let executions = ref 0 in
  G.register_group w.server ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_cfg |> with_dedup)
    ();
  G.register w.server ~group:"ctr" inc_sig (fun ctx n ->
      if n = 7 then incr executions;
      S.sleep ctx.G.sched 60e-3;
      Ok (n + 1));
  S.at w.sched 2e-3 (fun () -> Net.crash w.net w.server_node);
  S.at w.sched 40e-3 (fun () -> Net.recover w.net w.server_node);
  let tid = ref (-1) and probe_tid = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:fast_cfg ~agent:"c" ~gid:"ctr" () in
         let se = R.stream h in
         SE.set_preserve_on_break se true;
         let p = R.stream_call h 7 in
         R.flush h;
         tid := trace_of p;
         (* A probe into the outage: its unacked data is what converts
            the crash into a detected stream break. *)
         S.sleep w.sched 3e-3;
         let probe = R.stream_call h 100 in
         R.flush h;
         probe_tid := trace_of probe;
         while SE.broken se = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 45e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit se : int);
         check Alcotest.int "result survives the incarnation" 8 (claim_normal p);
         check Alcotest.int "probe result" 101 (claim_normal probe);
         check Alcotest.(option int) "trace id unchanged across resubmit" (Some !tid)
           (P.trace p)));
  run_ok w.sched;
  check Alcotest.int "handler ran exactly once" 1 !executions;
  check Alcotest.(list int) "resubmission allocated no new trace ids"
    (List.sort compare [ !tid; !probe_tid ])
    (List.sort compare (Span.trace_ids w.spans));
  let evs = Span.events_of w.spans ~trace:!tid in
  check_order "incarnation crossing" evs
    Span.[ Issue; Break; Resubmit; Dedup_join; Reply; Claim ];
  check Alcotest.bool "duplicate did not re-execute" false
    (Span.has w.spans ~trace:!tid Span.Dedup_replay)

(* The cache-replay flavor: the handler is fast, so the first execution
   finishes during the outage and the resubmitted duplicate is answered
   from the dedup cache — still under the original trace id. *)

let test_resubmit_dedup_replay () =
  let w = make_world () in
  let executions = ref 0 in
  G.register_group w.server ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_cfg |> with_dedup)
    ();
  G.register w.server ~group:"ctr" inc_sig (fun ctx n ->
      if n = 7 then incr executions;
      S.sleep ctx.G.sched 5e-3;
      Ok (n + 1));
  S.at w.sched 2e-3 (fun () -> Net.crash w.net w.server_node);
  S.at w.sched 40e-3 (fun () -> Net.recover w.net w.server_node);
  let tid = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:fast_cfg ~agent:"c" ~gid:"ctr" () in
         let se = R.stream h in
         SE.set_preserve_on_break se true;
         let p = R.stream_call h 7 in
         R.flush h;
         tid := trace_of p;
         S.sleep w.sched 3e-3;
         let probe = R.stream_call h 100 in
         R.flush h;
         while SE.broken se = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 45e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit se : int);
         check Alcotest.int "result" 8 (claim_normal p);
         check Alcotest.int "probe result" 101 (claim_normal probe)));
  run_ok w.sched;
  check Alcotest.int "handler ran exactly once" 1 !executions;
  check_order "cache replay" (Span.events_of w.spans ~trace:!tid)
    Span.[ Issue; Exec_end; Break; Resubmit; Dedup_replay; Reply; Claim ]

(* ------------------------------------------------------------------ *)
(* A parked pipelined call keeps one trace id through park and
   substitute: the dependent call dispatches (unordered group) while
   its producer still executes, parks on the missing outcome, then
   substitutes and runs. *)

let test_parked_pipelined_call_spans () =
  let w = make_world () in
  G.register_group w.server ~group:"pipe"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_ordered false)
    ();
  G.register w.server ~group:"pipe" inc_sig (fun ctx n ->
      S.sleep ctx.G.sched 2e-3;
      Ok (n + 1));
  let tid1 = ref (-1) and tid2 = ref (-1) in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"pipe" () in
         let p1 = R.stream_call h 1 in
         let p2 = R.stream_call_p h (R.pipe p1) in
         R.flush h;
         check Alcotest.int "chained result" 3 (claim_normal p2);
         tid1 := trace_of p1;
         tid2 := trace_of p2));
  run_ok w.sched;
  Alcotest.(check bool) "links have distinct trace ids" true (!tid1 <> !tid2);
  check_order "parked dependent" (Span.events_of w.spans ~trace:!tid2)
    Span.[ Issue; Deliver; Dispatch; Park; Substitute; Exec_begin; Exec_end; Reply; Claim ];
  check Alcotest.bool "producer never parks" false (Span.has w.spans ~trace:!tid1 Span.Park);
  check Alcotest.bool "producer executes" true
    (Span.has w.spans ~trace:!tid1 Span.Exec_begin)

(* The packaged dump asserts the same story end to end (E13 shape) and
   is what `experiments --trace` prints. *)

let test_trace_dump_covers_every_edge () =
  let out = Workloads.Exp_trace.render_pipelined () in
  check Alcotest.bool "dump confirms every pipelined edge" true
    (contains ~affix:"traversed every pipelined edge" out);
  check Alcotest.bool "no missing-edge warning" false
    (contains ~affix:"WARNING" out)

(* ------------------------------------------------------------------ *)
(* Tracing disabled: wire items are byte-for-byte the pre-tracing
   encodings, and the span store records nothing (ids still advance so
   toggling tracing mid-run keeps them stable). *)

let bin v = Xdr.Bin.to_string v

let test_wire_identity_when_disabled () =
  let untraced =
    W.call_item ~seq:5 ~cid:7 ~trace:None ~port:"work" ~kind:W.Call ~args:(Xdr.Int 42) ()
  in
  let compact =
    Xdr.Record
      [
        ("q", Xdr.Int 5);
        ("i", Xdr.Int 7);
        ("p", Xdr.Str "work");
        ("k", Xdr.Str "c");
        ("a", Xdr.Int 42);
      ]
  in
  check Alcotest.string "untraced call = pre-tracing bytes" (bin compact) (bin untraced);
  check Alcotest.(option int) "no trace field" None (W.item_trace untraced);
  let reply = W.reply_item ~seq:5 ~trace:None (W.W_normal (Xdr.Int 43)) in
  check Alcotest.string "untraced reply = pre-tracing bytes"
    (bin (Xdr.Pair (Xdr.Int 5, Xdr.Tagged ("n", Xdr.Int 43))))
    (bin reply);
  check Alcotest.string "untraced send-ok = pre-tracing bytes"
    (bin (Xdr.Pair (Xdr.Int 5, Xdr.Tagged ("o", Xdr.Unit))))
    (bin (W.send_ok_item ~seq:5 ~trace:None));
  (* Traced forms carry the id, decode identically, and are the only
     forms that grow. *)
  let traced =
    W.call_item ~seq:5 ~cid:7 ~trace:(Some 9) ~port:"work" ~kind:W.Call ~args:(Xdr.Int 42) ()
  in
  check Alcotest.(option int) "traced call carries the id" (Some 9) (W.item_trace traced);
  check Alcotest.bool "trace field costs bytes only when present" true
    (String.length (bin traced) > String.length (bin untraced));
  (match (W.parse_call untraced, W.parse_call traced) with
  | Ok a, Ok b -> check Alcotest.bool "both call forms parse alike" true (a = b)
  | _ -> Alcotest.fail "call items failed to parse");
  let traced_reply = W.reply_item ~seq:5 ~trace:(Some 9) (W.W_normal (Xdr.Int 43)) in
  check Alcotest.(option int) "traced reply carries the id" (Some 9)
    (W.item_trace traced_reply);
  match (W.parse_reply reply, W.parse_reply traced_reply) with
  | Ok (sa, W.W_normal (Xdr.Int va)), Ok (sb, W.W_normal (Xdr.Int vb)) ->
      check Alcotest.(pair int int) "both reply forms parse alike" (sa, va) (sb, vb)
  | _ -> Alcotest.fail "reply items failed to parse"

let test_disabled_store_records_nothing () =
  let w = make_world ~trace:false () in
  G.register_group w.server ~group:"g"
    ~config:GC.(default |> with_reply_config batch_cfg)
    ();
  G.register w.server ~group:"g" inc_sig (fun _ n -> Ok (n + 1));
  let tid = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"g" () in
         let p = R.stream_call h 1 in
         R.flush h;
         check Alcotest.int "result" 2 (claim_normal p);
         tid := P.trace p));
  run_ok w.sched;
  check Alcotest.(list int) "no events recorded" [] (List.map (fun _ -> 0) (Span.events w.spans));
  check Alcotest.bool "trace ids still allocated while disabled" true (!tid <> None)

let () =
  Alcotest.run "tracing"
    [
      ( "spans",
        [
          Alcotest.test_case "plain call lifecycle" `Quick test_lifecycle_spans;
          Alcotest.test_case "resubmit keeps trace id (dedup join)" `Quick
            test_resubmit_keeps_trace_and_joins;
          Alcotest.test_case "resubmit keeps trace id (dedup replay)" `Quick
            test_resubmit_dedup_replay;
          Alcotest.test_case "parked pipelined call parks + substitutes" `Quick
            test_parked_pipelined_call_spans;
          Alcotest.test_case "trace dump covers every pipelined edge" `Quick
            test_trace_dump_covers_every_edge;
        ] );
      ( "wire compatibility",
        [
          Alcotest.test_case "byte identity with tracing off" `Quick
            test_wire_identity_when_disabled;
          Alcotest.test_case "disabled store records nothing" `Quick
            test_disabled_store_records_nothing;
        ] );
    ]
