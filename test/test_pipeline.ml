(* Promise pipelining (docs/PIPELINE.md): calling on a not-yet-ready
   result. A dependent call ships immediately with a promise-reference
   argument ({!Xdr.Pref}); the receiver substitutes the produced value
   locally, parks the call if the producer has not finished, and
   propagates a producer's abnormal outcome to the dependent call
   without executing it. Includes the supervision interaction: a
   dependent call resubmitted across a stream break still executes
   exactly once, with the correctly substituted argument. *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module G = Argus.Guardian
module GC = Cstream.Group_config

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

let peek sched name = Sim.Stats.peek (S.stats sched) name

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fixture: one client node, one server guardian. Handlers are
   registered per test. *)

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  client_node : Net.node;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
}

(* Batching stream config, so back-to-back pipelined calls coalesce. *)
let batch_cfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let make_world ?(cfg = Net.default_config) ?pipeline_cache () =
  let sched = S.create () in
  let net = Net.create sched cfg in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create ?pipeline_cache server_hub ~name:"server" in
  { sched; net; client_node; server_node; client_hub; server }

let handle w ?(config = batch_cfg) ~agent ~gid hs =
  let ag = Core.Agent.create w.client_hub ~name:agent ~config () in
  R.bind ag ~dst:(Net.address w.server_node) ~gid hs

let step_sig = Core.Sigs.hsig0 "step" ~arg:Xdr.int ~res:Xdr.int

(* ------------------------------------------------------------------ *)
(* Same-stream chain: k dependent calls, about one round trip. *)

let test_chain_single_round_trip () =
  let w = make_world () in
  G.register w.server ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  let depth = 4 in
  let finished = ref nan and got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"main" step_sig in
         let p = ref (R.stream_call h 0) in
         for _ = 2 to depth do
           p := R.stream_call_p h (R.pipe !p)
         done;
         R.flush h;
         got := Some (P.claim !p);
         finished := S.now w.sched));
  run_ok w.sched;
  check Alcotest.bool "chain value" true (!got = Some (P.Normal depth));
  (* One round trip is ~(2 * wire_latency + overheads) ≈ 2.4 ms here; a
     claim-each chain would need at least depth * 2 * wire_latency. *)
  check Alcotest.bool
    (Printf.sprintf "pipelined chain is ~1 RTT (took %.3f ms)" (1e3 *. !finished))
    true
    (!finished < 2.0 *. 2.4e-3);
  check Alcotest.int "pipelined calls counted" (depth - 1) (peek w.sched "pipelined_calls");
  check Alcotest.int "substitutions counted" (depth - 1) (peek w.sched "ref_substitutions");
  check Alcotest.int "nothing parked (ordered stream)" 0 (peek w.sched "parked_calls");
  check Alcotest.int "no ref failures" 0 (peek w.sched "ref_failures")

(* ------------------------------------------------------------------ *)
(* Cross-stream, cross-group: the dependent call arrives (on its own
   stream, to another group of the same guardian) while the producer is
   still executing — it parks, then runs with the substituted value. *)

let test_cross_stream_parking () =
  let w = make_world () in
  G.register w.server ~group:"main" step_sig (fun ctx n ->
      S.sleep ctx.G.sched 5e-3;
      Ok (n * 2));
  let aux_saw = ref [] in
  G.register w.server ~group:"aux" step_sig (fun _ n ->
      aux_saw := n :: !aux_saw;
      Ok (n + 1));
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let producer = handle w ~agent:"a" ~gid:"main" step_sig in
         let consumer = handle w ~agent:"b" ~gid:"aux" step_sig in
         let p1 = R.stream_call producer 7 in
         R.flush producer;
         let p2 = R.stream_call_p consumer (R.pipe p1) in
         R.flush consumer;
         got := Some (P.claim p2)));
  run_ok w.sched;
  check Alcotest.bool "dependent result" true (!got = Some (P.Normal 15));
  check Alcotest.(list int) "dependent executed once, with substituted arg" [ 14 ] !aux_saw;
  check Alcotest.int "dependent call parked" 1 (peek w.sched "parked_calls");
  check Alcotest.int "one substitution" 1 (peek w.sched "ref_substitutions")

(* ------------------------------------------------------------------ *)
(* Abnormal producers: the dependent call completes with the producer's
   outcome and its handler never runs. *)

type werr = Too_big of int

let werr_codec =
  Core.Sigs.(
    empty_signals
    |> signal_case ~name:"too_big" Xdr.int
         ~inj:(fun n -> Too_big n)
         ~proj:(fun (Too_big n) -> Some n))

let checked_sig = Core.Sigs.hsig "checked" ~arg:Xdr.int ~res:Xdr.int ~signals_c:werr_codec ()

let test_producer_signal_propagates () =
  let w = make_world () in
  let executions = ref [] in
  G.register w.server ~group:"main" checked_sig (fun _ n ->
      executions := n :: !executions;
      if n > 10 then Error (Too_big n) else if n < 0 then failwith "negative" else Ok (n + 1));
  let sig_out = ref None and fail_out = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"main" checked_sig in
         (* Producer signals: dependent must signal identically. *)
         let p1 = R.stream_call h 100 in
         let p2 = R.stream_call_p h (R.pipe p1) in
         (* Producer fails (handler crash): dependent must fail. *)
         let q1 = R.stream_call h (-1) in
         let q2 = R.stream_call_p h (R.pipe q1) in
         R.flush h;
         sig_out := Some (P.claim p2);
         fail_out := Some (P.claim q2)));
  run_ok w.sched;
  (match !sig_out with
  | Some (P.Signal (Too_big 100)) -> ()
  | _ -> Alcotest.fail "dependent should signal the producer's signal");
  (match !fail_out with
  | Some (P.Failure reason) ->
      check Alcotest.bool "failure reason carried over" true (contains ~affix:"crashed" reason)
  | _ -> Alcotest.fail "dependent should fail with the producer's failure");
  (* Only the two producers ever executed. *)
  check Alcotest.(list int) "dependents never executed" [ -1; 100 ] (List.sort compare !executions);
  check Alcotest.int "two propagated abnormals" 2 (peek w.sched "ref_failures")

let test_dead_producer_short_circuits () =
  (* The producer's promise is already Unavailable when piped (its
     stream broke): the dependent call completes abnormally at the
     sender — nothing travels, nothing executes. *)
  let w = make_world () in
  let executions = ref 0 in
  G.register w.server ~group:"main" step_sig (fun _ n ->
      incr executions;
      Ok (n + 1));
  let out = ref None and msgs_before = ref 0 and msgs_after = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"main" step_sig in
         let p1 = R.stream_call h 1 in
         (* Break before anything is transmitted: p1 resolves
            Unavailable and was never seen by the server. *)
         SE.restart (R.stream h);
         (match P.claim p1 with
         | P.Unavailable _ -> ()
         | _ -> Alcotest.fail "broken stream should resolve p1 Unavailable");
         msgs_before := Sim.Stats.peek (Net.stats w.net) "msgs_sent";
         let p2 = R.stream_call_p h (R.pipe p1) in
         check Alcotest.bool "dead-producer dependent is ready at once" true (P.ready p2);
         msgs_after := Sim.Stats.peek (Net.stats w.net) "msgs_sent";
         out := Some (P.claim p2)));
  run_ok w.sched;
  (match !out with
  | Some (P.Unavailable _) -> ()
  | _ -> Alcotest.fail "dependent should be Unavailable like its producer");
  check Alcotest.int "nothing transmitted for the dead dependent" !msgs_before !msgs_after;
  check Alcotest.int "no handler ran" 0 !executions

(* ------------------------------------------------------------------ *)
(* Field selection: consume one field of a promised record result. *)

let make_sig =
  Core.Sigs.hsig0 "make" ~arg:Xdr.int
    ~res:(Xdr.record2 "bounds" ("lo", Xdr.int) ("hi", Xdr.int))

let test_field_selection () =
  let w = make_world () in
  G.register w.server ~group:"main" make_sig (fun _ n -> Ok (n, n * 10));
  let step_saw = ref [] in
  G.register w.server ~group:"aux" step_sig (fun _ n ->
      step_saw := n :: !step_saw;
      Ok (n + 1));
  let got = ref None and missing = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let maker = handle w ~agent:"a" ~gid:"main" make_sig in
         let stepper = handle w ~agent:"b" ~gid:"aux" step_sig in
         let p1 = R.stream_call maker 3 in
         let p2 = R.stream_call_p stepper (R.pipe_field p1 ~field:"hi") in
         let p3 = R.stream_call_p stepper (R.pipe_field p1 ~field:"nope") in
         R.flush maker;
         R.flush stepper;
         got := Some (P.claim p2);
         missing := Some (P.claim p3)));
  run_ok w.sched;
  check Alcotest.bool "hi field selected and stepped" true (!got = Some (P.Normal 31));
  check Alcotest.(list int) "stepper saw only the selected field" [ 30 ] !step_saw;
  (match !missing with
  | Some (P.Failure reason) ->
      check Alcotest.bool "missing field named in failure" true (contains ~affix:"nope" reason)
  | _ -> Alcotest.fail "missing field must fail the dependent call")

(* ------------------------------------------------------------------ *)
(* Guard rails *)

let test_pipe_requires_origin () =
  let w = make_world () in
  let p : (int, Core.Sigs.nothing) P.t = P.create w.sched in
  (match R.pipe p with
  | _ -> Alcotest.fail "pipe of an origin-less promise must be rejected"
  | exception Invalid_argument _ -> ())

let test_forward_ref_on_same_stream_fails () =
  (* A reference to this stream's own (or a later) call can never
     resolve — the receiver must fail it instead of deadlocking. *)
  let w = make_world () in
  G.register w.server ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  let out = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"main" step_sig in
         let se = R.stream h in
         let args =
           Xdr.Pref { Xdr.ps_stream = SE.stable_id se; ps_call = 999; ps_field = None }
         in
         (match
            SE.call se ~port:"step" ~kind:Cstream.Wire.Call ~args ~on_reply:(fun o ->
                out := Some o)
          with
         | Ok () -> ()
         | Error e -> Alcotest.failf "call rejected: %s" e);
         SE.flush se));
  run_ok w.sched;
  (match !out with
  | Some (Cstream.Wire.W_failure _) -> ()
  | _ -> Alcotest.fail "forward self-reference must fail");
  check Alcotest.int "counted as ref failure" 1 (peek w.sched "ref_failures")

let test_cross_node_pipe_rejected () =
  let w = make_world () in
  let other_node = Net.add_node w.net ~name:"other" in
  let other_hub = CH.create_hub ~net:(w.net, other_node) () in
  let other = G.create other_hub ~name:"other" in
  G.register w.server ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  G.register other ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  ignore
    (S.spawn w.sched (fun () ->
         let h1 = handle w ~agent:"a" ~gid:"main" step_sig in
         let ag = Core.Agent.create w.client_hub ~name:"b" ~config:batch_cfg () in
         let h2 = R.bind ag ~dst:(Net.address other_node) ~gid:"main" step_sig in
         let p1 = R.stream_call h1 1 in
         match R.stream_call_p h2 (R.pipe p1) with
         | _ -> Alcotest.fail "cross-node pipe must be rejected"
         | exception P.Failure_exn _ -> ()));
  run_ok w.sched

(* ------------------------------------------------------------------ *)
(* Supervision x pipelining: break the stream with the producer and the
   dependent call in flight; resubmission re-resolves the reference via
   the dedup cache and the dependent executes exactly once. *)

let fast_chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 4;
    flush_interval = 0.5e-3;
    retransmit_timeout = 4e-3;
    max_retries = 3;
  }

let test_resubmit_dependent_exactly_once () =
  let w = make_world () in
  let executions : (int, int) Hashtbl.t = Hashtbl.create 8 in
  G.register_group w.server ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  G.register w.server ~group:"ctr" step_sig (fun ctx n ->
      S.sleep ctx.G.sched 2e-3;
      Hashtbl.replace executions n (1 + Option.value ~default:0 (Hashtbl.find_opt executions n));
      Ok (n * 2));
  (* Outage window: both calls are in flight (the producer possibly
     mid-execution) when the server goes dark. *)
  S.at w.sched 2e-3 (fun () -> Net.crash w.net w.server_node);
  S.at w.sched 40e-3 (fun () -> Net.recover w.net w.server_node);
  let o1 = ref None and o2 = ref None and o3 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:fast_chan_cfg ~agent:"c" ~gid:"ctr" step_sig in
         let se = R.stream h in
         SE.set_preserve_on_break se true;
         let p1 = R.stream_call h 7 in
         let p2 = R.stream_call_p h (R.pipe p1) in
         R.flush h;
         (* A probe into the outage: the first two calls were already
            acked, so without fresh unacked data the client would never
            notice the server is gone. *)
         S.sleep w.sched 3e-3;
         let p3 = R.stream_call h 1 in
         R.flush h;
         (* Wait out the break, then resubmit on a fresh incarnation. *)
         while SE.broken se = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 45e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit se : int);
         o1 := Some (P.claim p1);
         o2 := Some (P.claim p2);
         o3 := Some (P.claim p3)));
  run_ok w.sched;
  check Alcotest.bool "producer result" true (!o1 = Some (P.Normal 14));
  check Alcotest.bool "dependent result" true (!o2 = Some (P.Normal 28));
  check Alcotest.bool "probe result" true (!o3 = Some (P.Normal 2));
  check Alcotest.int "producer executed exactly once" 1
    (Option.value ~default:0 (Hashtbl.find_opt executions 7));
  check Alcotest.int "dependent executed exactly once, substituted arg" 1
    (Option.value ~default:0 (Hashtbl.find_opt executions 14));
  check Alcotest.int "probe executed exactly once" 1
    (Option.value ~default:0 (Hashtbl.find_opt executions 1));
  check Alcotest.int "no other argument values were executed" 3 (Hashtbl.length executions)

(* ------------------------------------------------------------------ *)
(* Supervision x pipelining, the parked flavour: the dependent call is
   parked on a dedup group (waiting for a producer on another stream)
   when its own connection dies. The parked call must still run to
   completion once the producer lands — its outcome is what resolves
   the In_progress dedup entry a resubmitted duplicate joins. A
   regression here deadlocks the duplicate forever. *)

let test_parked_dependent_conn_break_exactly_once () =
  let w = make_world () in
  let slow_execs : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let ctr_execs : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let bump tbl n = Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)) in
  G.register_group w.server ~group:"slow"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  G.register w.server ~group:"slow" step_sig (fun ctx n ->
      bump slow_execs n;
      S.sleep ctx.G.sched 30e-3;
      Ok (n * 2));
  G.register_group w.server ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  G.register w.server ~group:"ctr" step_sig (fun _ n ->
      bump ctr_execs n;
      Ok (n + 1));
  (* Cut the link while the producer executes and the dependent call is
     parked; every channel (including the reply for the first ctr call)
     goes unacked, so both sides break by retransmission exhaustion —
     the receiver's ctr conn dies with the dependent call still
     parked. *)
  let client = Net.address w.client_node and server = Net.address w.server_node in
  S.at w.sched 1.8e-3 (fun () -> Net.partition w.net client server);
  S.at w.sched 25e-3 (fun () -> Net.heal w.net client server);
  let o1 = ref None and o0 = ref None and o2 = ref None and o3 = ref None and o4 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let producer = handle w ~config:fast_chan_cfg ~agent:"a" ~gid:"slow" step_sig in
         let consumer = handle w ~config:fast_chan_cfg ~agent:"b" ~gid:"ctr" step_sig in
         let sa = R.stream producer and sb = R.stream consumer in
         SE.set_preserve_on_break sa true;
         SE.set_preserve_on_break sb true;
         let p1 = R.stream_call producer 7 in
         R.flush producer;
         let p0 = R.stream_call consumer 100 in
         let p2 = R.stream_call_p consumer (R.pipe p1) in
         R.flush consumer;
         (* Probes into the outage so each sender notices the break. *)
         S.sleep w.sched 4e-3;
         let p3 = R.stream_call producer 1 in
         R.flush producer;
         let p4 = R.stream_call consumer 50 in
         R.flush consumer;
         while SE.broken sa = None || SE.broken sb = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 26e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit sa : int);
         ignore (SE.restart_resubmit sb : int);
         o1 := Some (P.claim p1);
         o0 := Some (P.claim p0);
         o2 := Some (P.claim p2);
         o3 := Some (P.claim p3);
         o4 := Some (P.claim p4)));
  run_ok w.sched;
  check Alcotest.bool "producer result" true (!o1 = Some (P.Normal 14));
  check Alcotest.bool "plain ctr result" true (!o0 = Some (P.Normal 101));
  check Alcotest.bool "parked dependent result" true (!o2 = Some (P.Normal 15));
  check Alcotest.bool "slow probe result" true (!o3 = Some (P.Normal 2));
  check Alcotest.bool "ctr probe result" true (!o4 = Some (P.Normal 51));
  check Alcotest.int "producer executed exactly once" 1
    (Option.value ~default:0 (Hashtbl.find_opt slow_execs 7));
  check Alcotest.int "parked dependent executed exactly once, substituted arg" 1
    (Option.value ~default:0 (Hashtbl.find_opt ctr_execs 14));
  check Alcotest.int "plain ctr call executed exactly once" 1
    (Option.value ~default:0 (Hashtbl.find_opt ctr_execs 100));
  check Alcotest.int "dependent call parked" 1 (peek w.sched "parked_calls")

(* ------------------------------------------------------------------ *)
(* A reference whose producer outcome was FIFO-evicted from the
   registry must fail, not park forever. *)

let test_evicted_reference_fails () =
  let w = make_world ~pipeline_cache:2 () in
  G.register w.server ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  let ran = ref 0 in
  G.register w.server ~group:"aux" step_sig (fun _ n ->
      incr ran;
      Ok (n + 1));
  let out = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let producer = handle w ~agent:"a" ~gid:"main" step_sig in
         let consumer = handle w ~agent:"b" ~gid:"aux" step_sig in
         (* Five completed calls through a cap-2 registry push call 0
            out; reference it only after everything settled. *)
         let ps = List.init 5 (fun i -> R.stream_call producer i) in
         R.flush producer;
         List.iter (fun p -> ignore (P.claim p : _ P.outcome)) ps;
         let args =
           Xdr.Pref
             { Xdr.ps_stream = SE.stable_id (R.stream producer); ps_call = 0; ps_field = None }
         in
         let se = R.stream consumer in
         (match
            SE.call se ~port:"step" ~kind:Cstream.Wire.Call ~args ~on_reply:(fun o ->
                out := Some o)
          with
         | Ok () -> ()
         | Error e -> Alcotest.failf "call rejected: %s" e);
         SE.flush se));
  run_ok w.sched;
  (match !out with
  | Some (Cstream.Wire.W_failure reason) ->
      check Alcotest.bool "names the eviction" true (contains ~affix:"evicted" reason)
  | _ -> Alcotest.fail "evicted reference must fail, not park");
  check Alcotest.int "dependent never executed" 0 !ran;
  check Alcotest.int "nothing parked" 0 (peek w.sched "parked_calls");
  check Alcotest.int "counted as ref failure" 1 (peek w.sched "ref_failures")

(* ------------------------------------------------------------------ *)
(* Same node, different guardian: the registries are disjoint, so the
   reference must be rejected with the documented failure instead of
   parking forever at the receiver. *)

let test_cross_guardian_ref_fails () =
  let w = make_world () in
  let other = G.create (G.hub w.server) ~name:"other" in
  G.register w.server ~group:"main" step_sig (fun _ n -> Ok (n + 1));
  let ran = ref 0 in
  G.register other ~group:"g2" step_sig (fun _ n ->
      incr ran;
      Ok (n + 1));
  let out = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let producer = handle w ~agent:"a" ~gid:"main" step_sig in
         let dependent = handle w ~agent:"b" ~gid:"g2" step_sig in
         let p1 = R.stream_call producer 1 in
         let p2 = R.stream_call_p dependent (R.pipe p1) in
         R.flush producer;
         R.flush dependent;
         ignore (P.claim p1 : _ P.outcome);
         out := Some (P.claim p2)));
  run_ok w.sched;
  (match !out with
  | Some (P.Failure reason) ->
      check Alcotest.bool "names the guardian mismatch" true (contains ~affix:"guardian" reason)
  | _ -> Alcotest.fail "cross-guardian reference must fail, not park");
  check Alcotest.int "dependent never executed" 0 !ran;
  check Alcotest.int "nothing parked" 0 (peek w.sched "parked_calls");
  check Alcotest.int "counted as ref failure" 1 (peek w.sched "ref_failures")

(* ------------------------------------------------------------------ *)
(* Waiter-slot hygiene: a parked call abandoned with its connection
   (dedup off) must release its registry slots, or the table fills up
   and refuses every future cross-stream pipelined call. *)

let test_parked_waiters_reclaimed_on_conn_break () =
  let w = make_world () in
  G.register w.server ~group:"main" step_sig (fun ctx n ->
      S.sleep ctx.G.sched 20e-3;
      Ok (n * 2));
  let ran = ref 0 in
  G.register w.server ~group:"aux" step_sig (fun _ n ->
      incr ran;
      Ok (n + 1));
  let reg = G.pipeline_registry w.server in
  ignore
    (S.spawn w.sched (fun () ->
         let producer = handle w ~agent:"a" ~gid:"main" step_sig in
         let consumer = handle w ~agent:"b" ~gid:"aux" step_sig in
         let p1 = R.stream_call producer 7 in
         R.flush producer;
         let _p2 = R.stream_call_p consumer (R.pipe p1) in
         R.flush consumer;
         S.sleep w.sched 5e-3;
         check Alcotest.int "dependent parked one waiter" 1 (Pipeline.Registry.waiting reg);
         (* The consumer stream restarts: the Reset reaches the target,
            whose conn-close hook must release the parked slot. *)
         SE.restart (R.stream consumer);
         S.sleep w.sched 5e-3;
         check Alcotest.int "waiter slot reclaimed on conn close" 0
           (Pipeline.Registry.waiting reg);
         ignore (P.claim p1 : _ P.outcome)));
  run_ok w.sched;
  check Alcotest.int "orphaned dependent never executed" 0 !ran

(* ------------------------------------------------------------------ *)
(* Registry unit checks: cancel releases slots and silences callbacks;
   a refused await parks nothing; eviction marks work per stream. *)

let test_registry_waiter_accounting () =
  let reg : int Pipeline.Registry.t = Pipeline.Registry.create ~cap:1 ~max_waiters:2 () in
  let fired = ref [] in
  let park c =
    Pipeline.Registry.await reg ~stream:"s" ~call:c (fun v -> fired := v :: !fired)
  in
  let w1 = match park 0 with `Parked w -> w | _ -> Alcotest.fail "expected to park" in
  (match park 1 with `Parked _ -> () | _ -> Alcotest.fail "expected to park");
  (match park 2 with `Refused -> () | _ -> Alcotest.fail "expected refusal at max_waiters");
  check Alcotest.int "refused await parks nothing" 2 (Pipeline.Registry.waiting reg);
  Pipeline.Registry.cancel reg w1;
  check Alcotest.int "cancel releases the slot" 1 (Pipeline.Registry.waiting reg);
  Pipeline.Registry.record reg ~stream:"s" ~call:0 7;
  Pipeline.Registry.record reg ~stream:"s" ~call:1 9;
  check Alcotest.(list int) "cancelled waiter never fires" [ 9 ] !fired;
  check Alcotest.int "no waiters left" 0 (Pipeline.Registry.waiting reg);
  Pipeline.Registry.cancel reg w1;
  check Alcotest.int "cancel after firing is a no-op" 0 (Pipeline.Registry.waiting reg);
  (* cap = 1: recording call 1 evicted call 0. *)
  check Alcotest.bool "evicted below the mark" true
    (Pipeline.Registry.evicted reg ~stream:"s" ~call:0);
  check Alcotest.bool "present outcome is not evicted" false
    (Pipeline.Registry.evicted reg ~stream:"s" ~call:1);
  check Alcotest.bool "beyond the mark is not evicted" false
    (Pipeline.Registry.evicted reg ~stream:"s" ~call:5);
  check Alcotest.bool "other streams unaffected" false
    (Pipeline.Registry.evicted reg ~stream:"t" ~call:0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pipeline"
    [
      ( "pipelining",
        [
          Alcotest.test_case "4-deep chain in ~1 RTT" `Quick test_chain_single_round_trip;
          Alcotest.test_case "cross-stream dependent parks then runs" `Quick
            test_cross_stream_parking;
          Alcotest.test_case "producer signal/failure propagate, dependent never runs" `Quick
            test_producer_signal_propagates;
          Alcotest.test_case "dead producer short-circuits at sender" `Quick
            test_dead_producer_short_circuits;
          Alcotest.test_case "field selection (incl. missing field)" `Quick
            test_field_selection;
        ] );
      ( "guard rails",
        [
          Alcotest.test_case "pipe requires a stream-call origin" `Quick
            test_pipe_requires_origin;
          Alcotest.test_case "forward self-reference fails, no deadlock" `Quick
            test_forward_ref_on_same_stream_fails;
          Alcotest.test_case "cross-node pipe rejected at call site" `Quick
            test_cross_node_pipe_rejected;
          Alcotest.test_case "evicted reference fails, no park" `Quick
            test_evicted_reference_fails;
          Alcotest.test_case "cross-guardian reference fails, no park" `Quick
            test_cross_guardian_ref_fails;
          Alcotest.test_case "parked waiters reclaimed on conn break" `Quick
            test_parked_waiters_reclaimed_on_conn_break;
          Alcotest.test_case "registry waiter accounting" `Quick
            test_registry_waiter_accounting;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "resubmitted dependent executes exactly once" `Quick
            test_resubmit_dependent_exactly_once;
          Alcotest.test_case "parked dependent survives its conn's death" `Quick
            test_parked_dependent_conn_break_exactly_once;
        ] );
    ]
