(* End-to-end tests through the typed layer: guardians + typed remote
   calls + promises, including the paper's running example (grades) in
   its three forms: Figure 3-1 (two sequential loops), Figure 4-1
   (forks — with its termination problem), Figure 4-2 (coenter). *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module G = Argus.Guardian
module GC = Cstream.Group_config

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* ------------------------------------------------------------------ *)
(* Fixture: a grades database guardian and a printer guardian. *)

type db_err = No_such_student of string

let db_err_codec =
  Core.Sigs.(
    empty_signals
    |> signal_case ~name:"no_such_student" Xdr.string
         ~inj:(fun s -> No_such_student s)
         ~proj:(fun (No_such_student s) -> Some s))

(* record_grade: port (string, int) returns (real) signals (no_such_student) *)
let record_grade_sig =
  Core.Sigs.hsig "record_grade"
    ~arg:(Xdr.pair Xdr.string Xdr.int)
    ~res:Xdr.real ~signals_c:db_err_codec ()

(* print: port (string) returns () *)
let print_sig = Core.Sigs.hsig0 "print" ~arg:Xdr.string ~res:Xdr.unit

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  client_node : Net.node;
  db_node : Net.node;
  printer_node : Net.node;
  client_hub : CH.hub;
  db : G.t;
  printer : G.t;
  printed : string list ref;
  recorded : (string, int list) Hashtbl.t;
}

let make_world ?(cfg = Net.default_config) ?(db_service = 0.0) ?(print_service = 0.0) () =
  let sched = S.create () in
  let net = Net.create sched cfg in
  let client_node = Net.add_node net ~name:"client" in
  let db_node = Net.add_node net ~name:"db" in
  let printer_node = Net.add_node net ~name:"printer" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let db_hub = CH.create_hub ~net:(net, db_node) () in
  let printer_hub = CH.create_hub ~net:(net, printer_node) () in
  let db = G.create db_hub ~name:"grades-db" in
  let printer = G.create printer_hub ~name:"printer" in
  let recorded : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  G.register db ~group:"grades" record_grade_sig (fun ctx (stu, grade) ->
      if db_service > 0.0 then S.sleep ctx.G.sched db_service;
      if stu = "" then Error (No_such_student stu)
      else begin
        let old = Option.value ~default:[] (Hashtbl.find_opt recorded stu) in
        Hashtbl.replace recorded stu (grade :: old);
        let grades = grade :: old in
        let avg =
          float_of_int (List.fold_left ( + ) 0 grades) /. float_of_int (List.length grades)
        in
        Ok avg
      end);
  let printed = ref [] in
  G.register printer ~group:"output" print_sig (fun ctx line ->
      if print_service > 0.0 then S.sleep ctx.G.sched print_service;
      printed := line :: !printed;
      Ok ());
  {
    sched; net; client_node; db_node; printer_node; client_hub; db; printer; printed; recorded;
  }

let agent w name = Core.Agent.create w.client_hub ~name ()

let db_handle w ag = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" record_grade_sig

let print_handle w ag = R.bind ag ~dst:(Net.address w.printer_node) ~gid:"output" print_sig

(* ------------------------------------------------------------------ *)
(* Typed calls *)

let test_rpc_normal () =
  let w = make_world () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = db_handle w (agent w "c") in
         got := Some (R.rpc h ("ben", 90))));
  run_ok w.sched;
  match !got with
  | Some (P.Normal avg) -> check (Alcotest.float 1e-9) "average" 90.0 avg
  | _ -> Alcotest.fail "expected Normal"

let test_rpc_signal_typed () =
  let w = make_world () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = db_handle w (agent w "c") in
         got := Some (R.rpc h ("", 50))));
  run_ok w.sched;
  match !got with
  | Some (P.Signal (No_such_student "")) -> ()
  | _ -> Alcotest.fail "expected typed signal"

let test_stream_call_promises_in_order () =
  (* "if the i+1st result is ready, then so is the ith" (§3). Checked
     at every scheduling point by a monitor fiber. *)
  let w = make_world ~db_service:1e-3 () in
  let violations = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         let h = db_handle w (agent w "c") in
         let promises = Array.init 10 (fun i -> R.stream_call h ("stu", i)) in
         R.flush h;
         (* monitor: scan for readiness inversions until all ready *)
         let rec monitor () =
           let all_ready = ref true in
           for i = 0 to 8 do
             if P.ready promises.(i + 1) && not (P.ready promises.(i)) then incr violations;
             if not (P.ready promises.(i)) then all_ready := false
           done;
           if not (P.ready promises.(9)) then all_ready := false;
           if not !all_ready then begin
             S.sleep w.sched 1e-4;
             monitor ()
           end
         in
         monitor ()));
  run_ok w.sched;
  check Alcotest.int "no readiness inversions" 0 !violations

let test_encode_failure_no_promise () =
  let w = make_world () in
  let bad_sig =
    {
      record_grade_sig with
      Core.Sigs.arg_c = Xdr.failing_encode ~every:1 (Xdr.pair Xdr.string Xdr.int);
    }
  in
  let raised = ref false in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" bad_sig in
         try ignore (R.stream_call h ("x", 1) : (float, db_err) P.t)
         with P.Failure_exn _ -> raised := true));
  run_ok w.sched;
  check Alcotest.bool "raised immediately, no promise" true !raised

let test_decode_failure_breaks_stream () =
  (* The receiver fails to decode the argument: the call gets failure
     "could not decode" and the stream breaks; a later call gets
     unavailable (§3, stream-call semantics step 3/4). *)
  let w = make_world () in
  let bad_sig =
    {
      record_grade_sig with
      Core.Sigs.arg_c =
        {
          (Xdr.pair Xdr.string Xdr.int) with
          Xdr.decode = (fun _ -> Error "user decode bug");
        };
    }
  in
  G.register w.db ~group:"grades" bad_sig (fun _ _ -> Ok 0.0);
  let o1 = ref None and o2 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" bad_sig in
         let p1 = R.stream_call h ("a", 1) in
         let p2 = R.stream_call h ("b", 2) in
         R.flush h;
         o1 := Some (P.claim p1);
         o2 := Some (P.claim p2)));
  run_ok w.sched;
  (match !o1 with
  | Some (P.Failure reason) ->
      check Alcotest.bool "mentions decode" true
        (String.length reason >= 16 && String.sub reason 0 16 = "could not decode")
  | _ -> Alcotest.fail "expected decode failure");
  match !o2 with
  | Some (P.Unavailable _) -> ()
  | _ -> Alcotest.fail "expected unavailable after break"

let test_result_encode_failure_breaks_stream () =
  let w = make_world () in
  let bad_sig =
    { record_grade_sig with Core.Sigs.res_c = Xdr.failing_encode ~every:1 Xdr.real }
  in
  G.register w.db ~group:"grades" bad_sig (fun _ _ -> Ok 1.0);
  let o1 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" bad_sig in
         o1 := Some (R.rpc h ("a", 1))));
  run_ok w.sched;
  match !o1 with
  | Some (P.Failure _) -> ()
  | _ -> Alcotest.fail "expected failure for unencodable result"

let test_handler_does_not_exist () =
  let w = make_world () in
  let ghost_sig = Core.Sigs.hsig0 "no_such_port" ~arg:Xdr.unit ~res:Xdr.unit in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" ghost_sig in
         got := Some (R.rpc h ())));
  run_ok w.sched;
  match !got with
  | Some (P.Failure "handler does not exist") -> ()
  | _ -> Alcotest.fail "expected failure(handler does not exist)"

let test_handler_crash_is_failure_not_break () =
  let w = make_world () in
  let crash_sig = Core.Sigs.hsig0 "crash" ~arg:Xdr.unit ~res:Xdr.unit in
  G.register w.db ~group:"grades" crash_sig (fun _ () -> failwith "handler bug");
  let o1 = ref None and o2 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let hc = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" crash_sig in
         let hg = db_handle w ag in
         o1 := Some (R.rpc hc ());
         (* the stream survives a handler crash *)
         o2 := Some (R.rpc hg ("ben", 80))));
  run_ok w.sched;
  (match !o1 with
  | Some (P.Failure _) -> ()
  | _ -> Alcotest.fail "crash should be failure");
  match !o2 with
  | Some (P.Normal _) -> ()
  | _ -> Alcotest.fail "stream should survive a handler crash"

let test_wounded_fiber_cannot_call () =
  let w = make_world () in
  let observed = ref false in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = db_handle w ag in
         try
           Core.Coenter.coenter w.sched
             [
               (fun () ->
                 S.enter_critical w.sched;
                 S.sleep w.sched 2.0;
                 (* wounded by the sibling's failure at t=1 *)
                 (try ignore (R.stream_call h ("x", 1) : (float, db_err) P.t)
                  with S.Terminated ->
                    observed := true;
                    S.exit_critical w.sched;
                    raise S.Terminated);
                 S.exit_critical w.sched);
               (fun () ->
                 S.sleep w.sched 1.0;
                 failwith "make sibling wounded");
             ]
         with Failure _ -> ()));
  ignore (S.run w.sched);
  check Alcotest.bool "wounded process may not make remote calls" true !observed

let test_orphan_destroyed_on_stream_restart () =
  let w = make_world ~db_service:10.0 () in
  let started = ref false in
  let slow_sig = Core.Sigs.hsig0 "slow" ~arg:Xdr.unit ~res:Xdr.unit in
  let handler_fate = ref None in
  G.register w.db ~group:"grades" slow_sig (fun ctx () ->
      started := true;
      match S.sleep ctx.G.sched 1000.0 with
      | () -> Ok ()
      | exception S.Terminated ->
          handler_fate := Some "destroyed";
          raise S.Terminated);
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" slow_sig in
         ignore (R.stream_call h () : (unit, Core.Sigs.nothing) P.t);
         R.flush h;
         S.sleep w.sched 1.0;
         (* abandon the computation: restart the stream *)
         Cstream.Stream_end.restart (R.stream h)));
  ignore (S.run ~until:50.0 w.sched);
  check Alcotest.bool "handler had started" true !started;
  check Alcotest.(option string) "orphan destroyed" (Some "destroyed") !handler_fate

(* ------------------------------------------------------------------ *)
(* Supervision: dedup + circuit breaker *)

module Sup = Core.Supervisor

let bump_sig = Core.Sigs.hsig0 "bump" ~arg:Xdr.int ~res:Xdr.int

(* Fast break detection so outages turn into supervisor work quickly. *)
let fast_chan_cfg =
  { CH.default_config with CH.max_batch = 4; flush_interval = 0.5e-3; retransmit_timeout = 4e-3; max_retries = 3 }

let fast_sup_cfg =
  {
    Sup.backoff_base = 5e-3;
    backoff_factor = 2.0;
    backoff_max = 0.05;
    backoff_jitter = 0.2;
    retry_budget = 20;
    open_timeout = 0.1;
  }

let test_dedup_exactly_once_under_dup_and_crash () =
  (* The transport duplicates aggressively AND the guardian's node
     crashes mid-run: between chanhub-level dup suppression and the
     target's cross-incarnation call-id cache, the handler still
     observes each op at most once — and every op acknowledged Normal
     exactly once. *)
  let w = make_world ~cfg:(Net.lossy ~loss:0.0 ~dup:0.3 Net.default_config) () in
  G.register_group w.db ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  let seen : (int, int) Hashtbl.t = Hashtbl.create 64 in
  G.register w.db ~group:"ctr" bump_sig (fun ctx op ->
      S.sleep ctx.G.sched 0.2e-3;
      Hashtbl.replace seen op (1 + Option.value ~default:0 (Hashtbl.find_opt seen op));
      Ok op);
  S.at w.sched 10e-3 (fun () -> Net.crash w.net w.db_node);
  S.at w.sched 30e-3 (fun () -> Net.recover w.net w.db_node);
  let n = 30 in
  let outcomes : (int, (int, Core.Sigs.nothing) P.outcome) Hashtbl.t = Hashtbl.create 64 in
  let rejected = ref 0 in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = Core.Agent.create w.client_hub ~name:"c" ~config:fast_chan_cfg () in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"ctr" bump_sig in
         let sup =
           Sup.supervise_agent ~config:fast_sup_cfg ag ~dst:(Net.address w.db_node) ~gid:"ctr"
         in
         let promises = ref [] in
         for op = 0 to n - 1 do
           (match R.stream_call h op with
           | p -> promises := (op, p) :: !promises
           | exception P.Unavailable_exn _ -> incr rejected);
           S.sleep w.sched 2e-3
         done;
         R.flush h;
         List.iter
           (fun (op, p) -> Hashtbl.replace outcomes op (P.claim p))
           (List.rev !promises);
         Sup.stop sup));
  run_ok w.sched;
  Hashtbl.iter
    (fun op c -> check Alcotest.int (Printf.sprintf "op %d executed once" op) 1 c)
    seen;
  let normal = ref 0 in
  Hashtbl.iter
    (fun op o ->
      match o with
      | P.Normal _ ->
          incr normal;
          check Alcotest.int
            (Printf.sprintf "acknowledged op %d applied exactly once" op)
            1
            (Option.value ~default:0 (Hashtbl.find_opt seen op))
      | P.Signal _ | P.Unavailable _ | P.Failure _ -> ())
    outcomes;
  check Alcotest.bool "calls succeeded around the outage" true (!normal > 0);
  check Alcotest.int "every op accounted for" n (Hashtbl.length outcomes + !rejected)

let test_supervisor_circuit_opens_then_recovers () =
  let w = make_world () in
  G.register_group w.db ~group:"ctr"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup)
    ();
  G.register w.db ~group:"ctr" bump_sig (fun _ op -> Ok op);
  let transitions = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = Core.Agent.create w.client_hub ~name:"c" ~config:fast_chan_cfg () in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"ctr" bump_sig in
         let sup =
           Sup.supervise_agent
             ~config:{ fast_sup_cfg with Sup.retry_budget = 2; open_timeout = 50e-3 }
             ag ~dst:(Net.address w.db_node) ~gid:"ctr"
         in
         Sup.on_state_change sup (fun st -> transitions := st :: !transitions);
         Net.crash w.net w.db_node;
         (* Undeliverable call: two restarts spend the budget, then the
            breaker opens and the pending call degrades. *)
         (match R.rpc h 1 with
         | P.Unavailable _ -> ()
         | _ -> Alcotest.fail "call into the outage should be unavailable");
         (match Sup.state sup with
         | Sup.Open -> ()
         | st -> Alcotest.failf "expected Open, got %a" Sup.pp_breaker_state st);
         (* fail-fast while open: refused at submission *)
         (match R.stream_call h 2 with
         | _ -> Alcotest.fail "open breaker should refuse new calls"
         | exception P.Unavailable_exn _ -> ());
         Net.recover w.net w.db_node;
         (* The half-open probe must restore service on its own. *)
         let ok = ref false and attempts = ref 0 in
         while (not !ok) && !attempts < 50 do
           incr attempts;
           match R.rpc h 3 with
           | P.Normal _ -> ok := true
           | P.Signal _ | P.Unavailable _ | P.Failure _ -> S.sleep w.sched 10e-3
           | exception P.Unavailable_exn _ -> S.sleep w.sched 10e-3
         done;
         check Alcotest.bool "service restored without manual restart" true !ok;
         (match Sup.state sup with
         | Sup.Closed -> ()
         | st -> Alcotest.failf "expected Closed, got %a" Sup.pp_breaker_state st);
         Sup.stop sup));
  run_ok w.sched;
  check Alcotest.bool "breaker opened" true (List.mem Sup.Open !transitions);
  check Alcotest.bool "breaker probed" true (List.mem Sup.Half_open !transitions);
  check Alcotest.bool "breaker closed again" true (List.mem Sup.Closed !transitions)

let test_port_ref_dynamic_binding () =
  (* Transmit a port reference (window-system style, §2) and call
     through it. *)
  let w = make_world () in
  let give_port_sig =
    Core.Sigs.hsig0 "give_port" ~arg:Xdr.unit ~res:Core.Sigs.port_ref_codec
  in
  G.register w.db ~group:"grades" give_port_sig (fun ctx () ->
      Ok (G.port_ref ctx.G.guardian ~group:"grades" ~port:"record_grade"));
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let hp = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" give_port_sig in
         match R.rpc hp () with
         | P.Normal pref ->
             let h = R.bind_ref ag pref record_grade_sig in
             got := Some (R.rpc h ("dyn", 70))
         | _ -> Alcotest.fail "could not fetch port ref"));
  run_ok w.sched;
  match !got with
  | Some (P.Normal avg) -> check (Alcotest.float 1e-9) "avg through port ref" 70.0 avg
  | _ -> Alcotest.fail "call through port ref failed"

let test_guardian_destroy_breaks_clients () =
  let w = make_world () in
  let got = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = db_handle w (agent w "c") in
         (match R.rpc h ("a", 1) with
         | P.Normal _ -> ()
         | _ -> Alcotest.fail "first call should work");
         G.destroy w.db;
         got := Some (R.rpc h ("b", 2))));
  run_ok w.sched;
  match !got with
  | Some (P.Unavailable _) | Some (P.Failure _) -> ()
  | _ -> Alcotest.fail "calls after destroy should not succeed"

let test_unordered_group_via_guardian () =
  (* register_group ~ordered:false: calls on ONE stream run
     concurrently (§2.1's footnoted override). *)
  let w = make_world () in
  G.register_group w.db ~group:"par" ~config:GC.(default |> with_ordered false) ();
  let slow_sig = Core.Sigs.hsig0 "job" ~arg:Xdr.int ~res:Xdr.int in
  G.register w.db ~group:"par" slow_sig (fun ctx n ->
      S.sleep ctx.G.sched 5e-3;
      Ok n);
  let finished_at = ref 0.0 in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "c" in
         let h = R.bind ag ~dst:(Net.address w.db_node) ~gid:"par" slow_sig in
         let ps = List.init 6 (fun i -> R.stream_call h i) in
         R.flush h;
         List.iter (fun p -> ignore (P.claim p : (int, _) P.outcome)) ps;
         finished_at := S.now w.sched));
  run_ok w.sched;
  (* sequential would be >= 30 ms; concurrent is ~5 ms + transport *)
  check Alcotest.bool "six 5ms calls overlapped" true (!finished_at < 15e-3)

let test_agent_reuses_stream_and_restart_to () =
  let w = make_world () in
  let ag = agent w "c" in
  let h1 = db_handle w ag in
  (* binding again through the same agent reuses the stream: sequence
     numbers continue, replies ordered across both handles *)
  let h2 = R.bind ag ~dst:(Net.address w.db_node) ~gid:"grades" record_grade_sig in
  check Alcotest.bool "same stream object" true (R.stream h1 == R.stream h2);
  ignore
    (S.spawn w.sched (fun () ->
         (match R.rpc h1 ("a", 1) with P.Normal _ -> () | _ -> Alcotest.fail "h1");
         Core.Agent.restart_to ag ~dst:(Net.address w.db_node) ~gid:"grades";
         match R.rpc h2 ("b", 2) with
         | P.Normal _ -> ()
         | _ -> Alcotest.fail "h2 after restart"));
  run_ok w.sched

let test_stream_call_statement_form () =
  (* stream as a statement: reply decoded and discarded, no promise *)
  let w = make_world () in
  ignore
    (S.spawn w.sched (fun () ->
         let h = db_handle w (agent w "c") in
         R.stream_call_ h ("a", 10);
         R.stream_call_ h ("a", 20);
         match R.synch h with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "synch"));
  run_ok w.sched;
  check Alcotest.(list int) "both calls executed" [ 20; 10 ]
    (Hashtbl.find w.recorded "a")

(* ------------------------------------------------------------------ *)
(* Actions *)

let test_action_commits () =
  let sched = S.create () in
  let log = ref [] in
  ignore
    (S.spawn sched (fun () ->
         let r =
           Argus.Action.run sched (fun act ->
               log := "step1" :: !log;
               Argus.Action.on_abort act (fun () -> log := "undo1" :: !log);
               41 + 1)
         in
         check Alcotest.int "result" 42 r));
  run_ok sched;
  check Alcotest.(list string) "no undo ran" [ "step1" ] !log

let test_action_aborts_in_reverse () =
  let sched = S.create () in
  let log = ref [] in
  ignore
    (S.spawn sched (fun () ->
         try
           Argus.Action.run sched (fun act ->
               Argus.Action.on_abort act (fun () -> log := "undo1" :: !log);
               Argus.Action.on_abort act (fun () -> log := "undo2" :: !log);
               failwith "abort me")
         with Failure _ -> ()));
  run_ok sched;
  check Alcotest.(list string) "reverse order undo" [ "undo2"; "undo1" ] (List.rev !log)

let test_action_nested_independent () =
  let sched = S.create () in
  let log = ref [] in
  ignore
    (S.spawn sched (fun () ->
         Argus.Action.run sched (fun outer ->
             Argus.Action.on_abort outer (fun () -> log := "outer-undo" :: !log);
             (* inner action aborts; outer continues and commits *)
             (try
                Argus.Action.run sched (fun inner ->
                    Argus.Action.on_abort inner (fun () -> log := "inner-undo" :: !log);
                    failwith "inner only")
              with Failure _ -> ());
             log := "outer-continues" :: !log)));
  run_ok sched;
  check Alcotest.(list string) "inner abort does not abort outer"
    [ "inner-undo"; "outer-continues" ]
    (List.rev !log)

let test_action_aborts_on_termination () =
  (* A coenter terminating an arm mid-action must roll the action
     back: "if it is not possible to record all grades, none will be
     recorded" (§4.2). *)
  let sched = S.create () in
  let recorded = ref [] in
  ignore
    (S.spawn sched (fun () ->
         try
           Core.Coenter.coenter sched
             [
               (fun () ->
                 Argus.Action.run sched (fun act ->
                     recorded := 1 :: !recorded;
                     Argus.Action.on_abort act (fun () ->
                         recorded := List.filter (fun x -> x <> 1) !recorded);
                     S.sleep sched 10.0;
                     recorded := 2 :: !recorded));
               (fun () ->
                 S.sleep sched 1.0;
                 failwith "stop everything");
             ]
         with Failure _ -> ()));
  run_ok sched;
  check Alcotest.(list int) "partial work rolled back" [] !recorded

(* ------------------------------------------------------------------ *)
(* The grades example, three ways *)

let students = [ ("alice", 81); ("ben", 77); ("carol", 93); ("dan", 68); ("erin", 88) ]

let expect_lines =
  List.map (fun (stu, grade) -> Printf.sprintf "%s: %.1f" stu (float_of_int grade)) students

(* Figure 3-1: two sequential loops — stream all record_grade calls,
   collect promises in an array, then claim in order and stream to the
   printer. *)
let run_grades_fig31 w =
  let finished = ref false in
  ignore
    (S.spawn w.sched (fun () ->
         let ag = agent w "client" in
         let record_grade = db_handle w ag in
         let print = print_handle w ag in
         (* first loop: stream calls, keep promises *)
         let averages = List.map (fun s -> R.stream_call record_grade s) students in
         R.flush record_grade;
         (* second loop: claim in (alphabetical) order and stream print *)
         List.iter2
           (fun (stu, _) avg_p ->
             let avg = P.claim_normal avg_p ~on_signal:(fun (No_such_student _) -> nan) in
             R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg))
           students averages;
         (match R.synch print with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "print synch failed");
         finished := true));
  run_ok w.sched;
  check Alcotest.bool "program completed" true !finished

let test_grades_fig31 () =
  let w = make_world ~db_service:1e-3 ~print_service:1e-3 () in
  run_grades_fig31 w;
  check Alcotest.(list string) "printed alphabetically with averages" expect_lines
    (List.rev !(w.printed));
  check Alcotest.int "all grades recorded" (List.length students) (Hashtbl.length w.recorded)

(* Figure 4-2: coenter — one arm records and enqueues promises, the
   other claims from the queue and prints concurrently. *)
let run_grades_fig42 w =
  ignore
    (S.spawn w.sched (fun () ->
         let ag_db = agent w "client-db" in
         let ag_pr = agent w "client-pr" in
         let record_grade = db_handle w ag_db in
         let print = print_handle w ag_pr in
         Core.Compose.producer_consumer w.sched
           ~produce:(fun emit ->
             List.iter (fun (stu, g) -> emit (stu, R.stream_call record_grade (stu, g))) students;
             R.flush record_grade;
             match R.synch record_grade with
             | Ok () -> ()
             | Error _ -> failwith "cannot_record")
           ~consume:(fun (stu, avg_p) ->
             let avg = P.claim_normal avg_p ~on_signal:(fun (No_such_student _) -> nan) in
             R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg))
           ();
         match R.synch print with
         | Ok () -> ()
         | Error _ -> failwith "cannot_print"))

let test_grades_fig42 () =
  let w = make_world ~db_service:1e-3 ~print_service:1e-3 () in
  run_grades_fig42 w;
  run_ok w.sched;
  check Alcotest.(list string) "printed alphabetically with averages" expect_lines
    (List.rev !(w.printed))

(* Figure 4-1's termination problem: with plain forks and an unbounded
   queue, a broken stream in the recording process leaves the printing
   process waiting forever. Our scheduler detects the deadlock; the
   coenter version instead terminates the group (next test). *)
let test_fig41_termination_problem () =
  let w = make_world () in
  Net.crash w.net w.db_node;
  ignore
    (S.spawn w.sched ~name:"main" (fun () ->
         let ag_db = agent w "client-db" in
         let ag_pr = agent w "client-pr" in
         let record_grade = db_handle w ag_db in
         let print = print_handle w ag_pr in
         (* Provoke the break first so the recording process will
            terminate early — "because of a communication problem". *)
         (try ignore (R.rpc record_grade ("probe", 0) : (float, db_err) P.outcome)
          with P.Unavailable_exn _ -> ());
         let aveq = Sched.Bqueue.create w.sched in
         let p1 =
           Core.Fork.fork w.sched ~name:"use_db" (fun () ->
               try
                 List.iter
                   (fun (stu, g) -> Sched.Bqueue.enq aveq (stu, R.stream_call record_grade (stu, g)))
                   students;
                 Ok ()
               with P.Unavailable_exn _ | P.Failure_exn _ ->
                 (* Terminates early with the signal — but never tells
                    the printing process (Figure 4-1's flaw). *)
                 Error `Cannot_record)
         in
         let p2 =
           Core.Fork.fork w.sched ~name:"do_print" (fun () ->
               (* Expects exactly as many items as students. *)
               List.iter
                 (fun _ ->
                   let stu, avg_p = Sched.Bqueue.deq aveq in
                   let avg =
                     match P.claim avg_p with
                     | P.Normal v -> v
                     | P.Signal _ | P.Unavailable _ | P.Failure _ -> nan
                   in
                   R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg))
                 students;
               Ok ())
         in
         (match P.claim p1 with
         | P.Signal `Cannot_record -> ()
         | _ -> Alcotest.fail "recording should have failed");
         (* ... and now the parent waits forever for the printer. *)
         ignore (P.claim p2 : (unit, Core.Sigs.nothing) P.outcome)));
  match S.run w.sched with
  | S.Deadlocked fibers ->
      let names = List.sort compare (List.map S.fiber_name fibers) in
      check Alcotest.bool "printer (and main) hang forever" true
        (List.mem "do_print" names && List.mem "main" names)
  | S.Completed -> Alcotest.fail "expected the termination problem to bite"
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* Same failure under coenter: group termination rescues the printer. *)
let test_fig42_group_termination_rescues () =
  let w = make_world () in
  Net.crash w.net w.db_node;
  let outcome = ref "" in
  ignore
    (S.spawn w.sched ~name:"main" (fun () ->
         let ag_db = agent w "client-db" in
         let ag_pr = agent w "client-pr" in
         let record_grade = db_handle w ag_db in
         let print = print_handle w ag_pr in
         let aveq = Sched.Bqueue.create w.sched in
         try
           Core.Coenter.coenter w.sched
             [
               (fun () ->
                 List.iter
                   (fun (stu, g) -> Sched.Bqueue.enq aveq (stu, R.stream_call record_grade (stu, g)))
                   students;
                 R.flush record_grade;
                 match R.synch record_grade with
                 | Ok () -> ()
                 | Error _ -> failwith "cannot_record");
               (fun () ->
                 List.iter
                   (fun _ ->
                     let stu, avg_p = Sched.Bqueue.deq aveq in
                     let avg = P.claim_normal avg_p ~on_signal:(fun _ -> nan) in
                     R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg))
                   students);
             ]
         with
         | Failure m -> outcome := m
         | P.Unavailable_exn _ -> outcome := "cannot_record"));
  run_ok w.sched;
  check Alcotest.string "failure propagated, no hang" "cannot_record" !outcome

let suite =
  [
    ( "typed-calls",
      [
        Alcotest.test_case "rpc normal" `Quick test_rpc_normal;
        Alcotest.test_case "rpc typed signal" `Quick test_rpc_signal_typed;
        Alcotest.test_case "promises ready in order" `Quick test_stream_call_promises_in_order;
        Alcotest.test_case "encode failure: no promise" `Quick test_encode_failure_no_promise;
        Alcotest.test_case "decode failure breaks stream" `Quick test_decode_failure_breaks_stream;
        Alcotest.test_case "result encode failure breaks stream" `Quick
          test_result_encode_failure_breaks_stream;
        Alcotest.test_case "handler does not exist" `Quick test_handler_does_not_exist;
        Alcotest.test_case "handler crash is failure, not break" `Quick
          test_handler_crash_is_failure_not_break;
        Alcotest.test_case "wounded fiber cannot call" `Quick test_wounded_fiber_cannot_call;
        Alcotest.test_case "orphan destroyed on restart" `Quick
          test_orphan_destroyed_on_stream_restart;
        Alcotest.test_case "port refs bind dynamically" `Quick test_port_ref_dynamic_binding;
        Alcotest.test_case "guardian destroy breaks clients" `Quick
          test_guardian_destroy_breaks_clients;
        Alcotest.test_case "unordered group overlaps" `Quick test_unordered_group_via_guardian;
        Alcotest.test_case "agent reuses stream; restart_to" `Quick
          test_agent_reuses_stream_and_restart_to;
        Alcotest.test_case "stream call statement form" `Quick test_stream_call_statement_form;
      ] );
    ( "supervision",
      [
        Alcotest.test_case "dedup exactly-once under dup + crash" `Quick
          test_dedup_exactly_once_under_dup_and_crash;
        Alcotest.test_case "circuit opens, probes, recovers" `Quick
          test_supervisor_circuit_opens_then_recovers;
      ] );
    ( "action",
      [
        Alcotest.test_case "commits" `Quick test_action_commits;
        Alcotest.test_case "aborts in reverse order" `Quick test_action_aborts_in_reverse;
        Alcotest.test_case "nested actions independent" `Quick test_action_nested_independent;
        Alcotest.test_case "aborts on termination" `Quick test_action_aborts_on_termination;
      ] );
    ( "grades-example",
      [
        Alcotest.test_case "figure 3-1 (sequential loops)" `Quick test_grades_fig31;
        Alcotest.test_case "figure 4-2 (coenter)" `Quick test_grades_fig42;
        Alcotest.test_case "figure 4-1 termination problem" `Quick
          test_fig41_termination_problem;
        Alcotest.test_case "figure 4-2 rescues via group termination" `Quick
          test_fig42_group_termination_rescues;
      ] );
  ]

let () = Alcotest.run "guardian" suite
