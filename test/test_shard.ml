(* Sharded port groups (docs/SHARDING.md): a group's calls partitioned
   across N worker lanes by a key of the arguments. Independent keys
   execute concurrently; calls on the same key keep call order; replies
   leave in per-stream call order no matter how lane completion is
   scrambled; the dedup cache stays exactly-once across a crash and
   [restart_resubmit]; conflicting group re-registration fails loudly;
   and the pipelining registry's byte budget evicts by encoded size. *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module T = Cstream.Target
module W = Cstream.Wire
module GC = Cstream.Group_config
module G = Argus.Guardian

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock: %s" (String.concat "," (List.map S.fiber_name fs))
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

let peek sched name = Sim.Stats.peek (S.stats sched) name

(* ------------------------------------------------------------------ *)
(* Guardian fixture (as in test_pipeline): one client node, one server
   guardian; groups and handlers are registered per test. *)

type world = {
  sched : S.t;
  net : CH.frame Net.t;
  client_node : Net.node;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
}

let make_world ?(seed = 42) () =
  let sched = S.create ~seed () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  { sched; net; client_node; server_node; client_hub; server }

(* Batching stream config so a burst of calls lands in one frame and
   actually feeds several lanes at once. *)
let batch_cfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let handle w ?(config = batch_cfg) ~agent ~gid hs =
  let ag = Core.Agent.create w.client_hub ~name:agent ~config () in
  R.bind ag ~dst:(Net.address w.server_node) ~gid hs

(* (key, op) -> result; sharded on [key] via an explicit partition so
   the lane each call lands on is known exactly, not hash-dependent. *)
let kv_sig = Core.Sigs.hsig0 "work" ~arg:(Xdr.pair Xdr.int Xdr.int) ~res:Xdr.int

let key_mod shards ~port:_ = function
  | Xdr.Pair (Xdr.Int k, _) -> k mod shards
  | _ -> 0

(* Issue one stream call per argument, in list order. (A list literal
   of [stream_call]s would evaluate right-to-left and scramble the seq
   assignment; [fold_left] sequences the side effects.) *)
let call_each h kvs =
  List.rev (List.fold_left (fun acc kv -> R.stream_call h kv :: acc) [] kvs)

let claim_normal p =
  match P.claim p with
  | P.Normal v -> v
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> Alcotest.fail "call failed"

(* ------------------------------------------------------------------ *)
(* Independent keys overlap: 8 calls of 5 ms across 4 lanes finish in
   about two service times, not eight. *)

let test_independent_keys_overlap () =
  let w = make_world () in
  G.register_group w.server ~group:"hot"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_shards ~key:(key_mod 4) 4)
    ();
  G.register w.server ~group:"hot" kv_sig (fun ctx (_, op) ->
      S.sleep ctx.G.sched 5e-3;
      Ok op);
  let finished = ref nan in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"hot" kv_sig in
         let ps = call_each h (List.init 8 (fun i -> (i, i))) in
         R.flush h;
         List.iteri (fun i p -> check Alcotest.int "result" i (claim_normal p)) ps;
         finished := S.now w.sched));
  run_ok w.sched;
  (* Serial execution would need 8 * 5 ms = 40 ms of service alone; four
     lanes with two calls each need ~10 ms plus one round trip. *)
  check Alcotest.bool
    (Printf.sprintf "lanes overlapped (took %.3f ms)" (1e3 *. !finished))
    true
    (!finished < 20e-3);
  check Alcotest.int "every call dispatched to a lane" 8 (peek w.sched "shard_dispatches");
  check Alcotest.bool "lane queues observed" true (peek w.sched "shard_queue_hwm" >= 1)

(* ------------------------------------------------------------------ *)
(* Same key: all calls collapse onto one lane, execute strictly in call
   order, and take the full serial time. *)

let test_same_key_serialised_in_order () =
  let w = make_world () in
  G.register_group w.server ~group:"hot"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_shards ~key:(key_mod 4) 4)
    ();
  let executed = ref [] in
  G.register w.server ~group:"hot" kv_sig (fun ctx (_, op) ->
      S.sleep ctx.G.sched 2e-3;
      executed := op :: !executed;
      Ok op);
  let finished = ref nan in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"hot" kv_sig in
         let ps = call_each h (List.init 6 (fun op -> (0, op))) in
         R.flush h;
         List.iter (fun p -> ignore (claim_normal p : int)) ps;
         finished := S.now w.sched));
  run_ok w.sched;
  check Alcotest.(list int) "per-key call order kept" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !executed);
  check Alcotest.bool
    (Printf.sprintf "one lane, serial service (took %.3f ms)" (1e3 *. !finished))
    true
    (!finished >= 12e-3)

(* ------------------------------------------------------------------ *)
(* Reply-order property: whatever scrambles lane completion — per-call
   pseudo-random service times on independent lanes, network jitter and
   loss bursts — the client observes every reply, in call order. The
   client fires [on_reply] per arriving reply frame without reordering,
   and channels deliver in order, so the observed order IS the order
   the sharded receiver released replies in. *)

let raw_reply_order ~seed ~shards =
  let sched = S.create ~seed () in
  let net = Net.create sched Net.default_config in
  let node_a = Net.add_node net ~name:"a" in
  let node_b = Net.add_node net ~name:"b" in
  let hub_a = CH.create_hub ~net:(net, node_a) () in
  let hub_b = CH.create_hub ~net:(net, node_b) () in
  let n = 20 in
  let dispatch _conn ~seq ~port:_ ~kind:_ ~args ~reply =
    ignore
      (S.spawn sched (fun () ->
           (* 0..6 ms of service, scrambled per call and per seed. *)
           let d = float_of_int (Hashtbl.hash (seed, seq) mod 7) *. 1e-3 in
           if d > 0.0 then S.sleep sched d;
           reply (W.W_normal args)))
  in
  ignore (T.create hub_b ~gid:"svc" ~config:GC.(default |> with_shards shards) dispatch : T.t);
  let inj = Fault.create net ~nodes:[ node_a; node_b ] in
  Fault.schedule inj
    [
      { Fault.at = 0.0; action = Fault.Jitter_burst { jitter = 2e-3; duration = 0.2 } };
      { Fault.at = 5e-3; action = Fault.Loss_burst { rate = 0.3; duration = 0.03 } };
    ];
  let order = ref [] in
  let stream = SE.create hub_a ~agent:"client" ~dst:(Net.address node_b) ~gid:"svc" () in
  ignore
    (S.spawn sched (fun () ->
         for i = 1 to n do
           match
             SE.call stream ~port:"p" ~kind:W.Call
               ~args:(Xdr.Pair (Xdr.Int i, Xdr.Int i))
               ~on_reply:(fun _ -> order := i :: !order)
           with
           | Ok () -> ()
           | Error e -> Alcotest.fail e
         done;
         SE.flush stream));
  (match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked _ | S.Time_limit -> QCheck.Test.fail_report "run did not complete");
  (n, List.rev !order)

let prop_replies_in_call_order =
  QCheck.Test.make
    ~name:"sharded replies leave in per-stream call order under scrambled completion"
    ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 2 8))
    (fun (seed, shards) ->
      let n, order = raw_reply_order ~seed ~shards in
      order = List.init n (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Exactly-once across a crash: a sharded dedup group loses the server
   mid-flight; resubmission on a fresh incarnation re-lands every call
   on its original lane and the dedup cache makes each execute once, in
   per-key order. *)

let fast_chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 4;
    flush_interval = 0.5e-3;
    retransmit_timeout = 4e-3;
    max_retries = 3;
  }

let test_sharded_dedup_crash_resubmit_exactly_once () =
  let w = make_world () in
  let executions : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let per_key : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let key_order_ok = ref true in
  G.register_group w.server ~group:"ctr"
    ~config:
      GC.(
        default |> with_reply_config fast_chan_cfg |> with_dedup
        |> with_shards ~key:(key_mod 4) 4)
    ();
  G.register w.server ~group:"ctr" kv_sig (fun ctx (k, op) ->
      S.sleep ctx.G.sched 2e-3;
      Hashtbl.replace executions (k, op)
        (1 + Option.value ~default:0 (Hashtbl.find_opt executions (k, op)));
      (match Hashtbl.find_opt per_key k with
      | Some (last :: _) when last >= op -> key_order_ok := false
      | _ -> ());
      Hashtbl.replace per_key k (op :: Option.value ~default:[] (Hashtbl.find_opt per_key k));
      Ok ((k * 100) + op));
  (* Outage window: all six calls are in flight (some mid-execution on
     their lanes) when the server goes dark. *)
  S.at w.sched 2e-3 (fun () -> Net.crash w.net w.server_node);
  S.at w.sched 40e-3 (fun () -> Net.recover w.net w.server_node);
  let outcomes = ref [] in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~config:fast_chan_cfg ~agent:"c" ~gid:"ctr" kv_sig in
         let se = R.stream h in
         SE.set_preserve_on_break se true;
         let ps = call_each h [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 0); (2, 1) ] in
         R.flush h;
         (* A probe into the outage so the client notices the break. *)
         S.sleep w.sched 3e-3;
         let probe = R.stream_call h (3, 0) in
         R.flush h;
         while SE.broken se = None do
           S.sleep w.sched 1e-3
         done;
         while S.now w.sched < 45e-3 do
           S.sleep w.sched 1e-3
         done;
         ignore (SE.restart_resubmit se : int);
         outcomes := List.map claim_normal (ps @ [ probe ])));
  run_ok w.sched;
  check Alcotest.(list int) "all results, in call order"
    [ 0; 1; 100; 101; 200; 201; 300 ] !outcomes;
  Hashtbl.iter
    (fun (k, op) count ->
      check Alcotest.int (Printf.sprintf "call (%d,%d) executed exactly once" k op) 1 count)
    executions;
  check Alcotest.int "no phantom executions" 7 (Hashtbl.length executions);
  check Alcotest.bool "per-key order kept across resubmit" true !key_order_ok

(* ------------------------------------------------------------------ *)
(* Conflicting group re-registration fails loudly instead of silently
   handing back the existing group. *)

let expect_invalid what f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_group_reregistration_conflicts () =
  let w = make_world () in
  let key = key_mod 4 in
  let cfg =
    GC.(default |> with_reply_config fast_chan_cfg |> with_dedup |> with_shards ~key 4)
  in
  G.register_group w.server ~group:"g" ~config:cfg ();
  (* An omitted config is "don't care" (this is what [register] relies
     on); re-passing the registration config — or a structurally equal
     rebuild sharing the same key function — is fine. *)
  G.register w.server ~group:"g" kv_sig (fun _ (_, op) -> Ok op);
  G.register_group w.server ~group:"g" ~config:cfg ();
  G.register_group w.server ~group:"g"
    ~config:GC.(default |> with_reply_config fast_chan_cfg |> with_dedup |> with_shards ~key 4)
    ();
  expect_invalid "conflicting shards" (fun () ->
      G.register_group w.server ~group:"g" ~config:GC.(cfg |> with_shards 2) ());
  expect_invalid "conflicting dedup" (fun () ->
      G.register_group w.server ~group:"g" ~config:GC.(cfg |> without_dedup) ());
  expect_invalid "conflicting ordered" (fun () ->
      G.register_group w.server ~group:"g" ~config:GC.(cfg |> with_ordered false) ());
  expect_invalid "conflicting dedup_cache" (fun () ->
      G.register_group w.server ~group:"g" ~config:GC.(cfg |> with_dedup ~cache:7) ());
  expect_invalid "conflicting reply_config" (fun () ->
      G.register_group w.server ~group:"g" ~config:GC.(cfg |> with_reply_config batch_cfg) ());
  expect_invalid "a different shard_key function conflicts" (fun () ->
      G.register_group w.server ~group:"g"
        ~config:GC.(cfg |> with_shards ~key:(key_mod 4) 4)
        ())

(* ------------------------------------------------------------------ *)
(* Registry byte budget: outcomes are sized on record, FIFO-evicted
   while over budget, eviction marks and the byte gauge track it. *)

let test_registry_byte_budget () =
  let evictions = ref 0 and evicted_bytes = ref 0 in
  let reg : string Pipeline.Registry.t =
    Pipeline.Registry.create ~cap:100 ~max_bytes:100 ~bytes_of:String.length
      ~on_evict:(fun ~bytes ->
        incr evictions;
        evicted_bytes := !evicted_bytes + bytes)
      ()
  in
  let module Reg = Pipeline.Registry in
  for call = 1 to 3 do
    Reg.record reg ~stream:"s" ~call (String.make 30 'x')
  done;
  check Alcotest.int "under budget, nothing evicted" 0 !evictions;
  check Alcotest.int "byte gauge" 90 (Reg.bytes reg);
  (* The fourth 30-byte outcome pushes the total to 120 > 100: the
     oldest is evicted even though the count cap (100) is far away. *)
  Reg.record reg ~stream:"s" ~call:4 (String.make 30 'x');
  check Alcotest.int "one eviction" 1 !evictions;
  check Alcotest.int "evicted bytes counted" 30 !evicted_bytes;
  check Alcotest.int "byte gauge back under budget" 90 (Reg.bytes reg);
  check Alcotest.bool "oldest outcome gone" true (Reg.find reg ~stream:"s" ~call:1 = None);
  check Alcotest.bool "oldest outcome marked evicted" true (Reg.evicted reg ~stream:"s" ~call:1);
  check Alcotest.bool "newest outcome kept" true
    (Reg.find reg ~stream:"s" ~call:4 = Some (String.make 30 'x'));
  (* An outcome bigger than the whole budget cannot be kept at all. *)
  Reg.record reg ~stream:"s" ~call:5 (String.make 150 'y');
  check Alcotest.int "everything flushed" 0 (Reg.known reg);
  check Alcotest.int "byte gauge empty" 0 (Reg.bytes reg);
  check Alcotest.int "evicted bytes total" (30 + 90 + 150) !evicted_bytes

(* ------------------------------------------------------------------ *)
(* Cross-lane pipelining: the producer runs on one lane while its
   dependent call — same stream, different shard key — arrives on
   another, parks on the registry, then executes with the substituted
   value; the dependent's reply is still released after the producer's. *)

let step_sig = Core.Sigs.hsig0 "step" ~arg:Xdr.int ~res:Xdr.int

let test_cross_shard_pipelining () =
  let w = make_world () in
  (* Ordinary ints go to lane 0; a promise-reference argument (not yet
     an int when the lane is chosen) goes to lane 1. *)
  let by_shape ~port:_ = function Xdr.Int _ -> 0 | _ -> 1 in
  G.register_group w.server ~group:"hot"
    ~config:GC.(default |> with_reply_config batch_cfg |> with_shards ~key:by_shape 2)
    ();
  G.register w.server ~group:"hot" step_sig (fun ctx n ->
      S.sleep ctx.G.sched 5e-3;
      Ok (n * 2));
  let got1 = ref None and got2 = ref None in
  ignore
    (S.spawn w.sched (fun () ->
         let h = handle w ~agent:"c" ~gid:"hot" step_sig in
         let p1 = R.stream_call h 7 in
         let p2 = R.stream_call_p h (R.pipe p1) in
         R.flush h;
         got2 := Some (P.claim p2);
         got1 := Some (P.claim p1)));
  run_ok w.sched;
  check Alcotest.bool "producer result" true (!got1 = Some (P.Normal 14));
  check Alcotest.bool "dependent result (substituted)" true (!got2 = Some (P.Normal 28));
  (* The dependent reached its own lane while the producer was still
     sleeping on lane 0 — it parked, then ran on substitution. *)
  check Alcotest.int "dependent parked on the registry" 1 (peek w.sched "parked_calls");
  check Alcotest.int "substitution performed" 1 (peek w.sched "ref_substitutions");
  check Alcotest.int "no reference failures" 0 (peek w.sched "ref_failures")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "sharding",
        [
          Alcotest.test_case "independent keys overlap" `Quick test_independent_keys_overlap;
          Alcotest.test_case "same key serialised in order" `Quick
            test_same_key_serialised_in_order;
          Alcotest.test_case "dedup crash + resubmit exactly once" `Quick
            test_sharded_dedup_crash_resubmit_exactly_once;
          Alcotest.test_case "group re-registration conflicts" `Quick
            test_group_reregistration_conflicts;
          Alcotest.test_case "cross-shard pipelining" `Quick test_cross_shard_pipelining;
          QCheck_alcotest.to_alcotest prop_replies_in_call_order;
        ] );
      ("registry", [ Alcotest.test_case "byte budget" `Quick test_registry_byte_budget ]);
    ]
